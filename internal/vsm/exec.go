package vsm

import (
	"context"
	"fmt"
	"math"
	"time"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/textproc"
)

// phaseClock times the resolve/fetch/traverse/merge phases of one
// query. Disabled (the common case without telemetry) it costs one
// predictable branch per mark and no time.Now calls; enabled it is
// ~5 monotonic clock reads per query, well under the instrumentation
// budget the benchmarks gate. It lives in the pooled queryState so
// enabling tracing allocates nothing.
type phaseClock struct {
	enabled                         bool
	began                           time.Time
	last                            time.Time
	resolve, fetch, traverse, merge int64
}

// start zeroes the phase accumulators and opens the first phase.
func (pc *phaseClock) start() {
	pc.resolve, pc.fetch, pc.traverse, pc.merge = 0, 0, 0, 0
	if pc.enabled {
		pc.began = time.Now()
		pc.last = pc.began
	}
}

// mark closes the current phase into d and opens the next.
func (pc *phaseClock) mark(d *int64) {
	if !pc.enabled {
		return
	}
	now := time.Now()
	*d += now.Sub(pc.last).Nanoseconds()
	pc.last = now
}

// total is the wall time since start; it can slightly exceed the phase
// sum (inter-phase bookkeeping runs off the clock).
func (pc *phaseClock) total() int64 {
	if !pc.enabled {
		return 0
	}
	return time.Since(pc.began).Nanoseconds()
}

// ExecMode selects the query-execution strategy.
type ExecMode int

const (
	// ExecAuto (the default) picks a pruned path when the source
	// carries max-impact metadata and the query is selective (k well
	// under the collection size) — block-max WAND for cosine when the
	// source has per-block bounds, MaxScore otherwise — and falls
	// back to the exhaustive scorer for near-full retrieval. All
	// choices return identical results.
	ExecAuto ExecMode = iota
	// ExecMaxScore runs document-at-a-time traversal with MaxScore
	// top-k pruning: postings lists whose maximum possible contribution
	// cannot lift a document over the current k-th best score are
	// consulted only via SeekGE, and candidates are abandoned as soon
	// as their score bound falls under the threshold. Results are
	// identical to ExecExhaustive. Requires an ImpactSource; engines
	// over plain sources quietly fall back to the exhaustive path.
	ExecMaxScore
	// ExecExhaustive scores every matching document — the reference
	// oracle the pruned paths are property-tested against, and the
	// right mode when k approaches the collection size.
	ExecExhaustive
	// ExecBlockMax runs block-max WAND: document-at-a-time pivot
	// selection over global per-term bounds, then a second bound check
	// against the much tighter per-block (index.BlockSize postings)
	// maxima before any document is fully scored, skipping whole
	// blocks whose best posting cannot beat the current k-th score.
	// Results are identical to ExecExhaustive. Sources without block
	// metadata (a live memtable) still execute correctly — each list
	// degrades to one implicit block bounded by its term-level maxima.
	ExecBlockMax
)

// String implements fmt.Stringer.
func (m ExecMode) String() string {
	switch m {
	case ExecAuto:
		return "auto"
	case ExecMaxScore:
		return "maxscore"
	case ExecExhaustive:
		return "exhaustive"
	case ExecBlockMax:
		return "blockmax"
	default:
		return fmt.Sprintf("ExecMode(%d)", int(m))
	}
}

// ParseExecMode parses the textual form used by flags and the HTTP
// API. The empty string is ExecAuto.
func ParseExecMode(s string) (ExecMode, error) {
	switch s {
	case "", "auto":
		return ExecAuto, nil
	case "maxscore":
		return ExecMaxScore, nil
	case "exhaustive":
		return ExecExhaustive, nil
	case "blockmax":
		return ExecBlockMax, nil
	default:
		return ExecAuto, fmt.Errorf("vsm: unknown exec mode %q (want auto, maxscore, blockmax, or exhaustive)", s)
	}
}

// ImpactSource is the optional Source extension that fuels MaxScore
// pruning: per-term upper bounds on any single document's score
// contribution. *index.Index implements it natively (computed by Build,
// persisted by the v2 codec); live shards maintain it incrementally.
type ImpactSource interface {
	// MaxTF is the largest term frequency in the term's postings.
	MaxTF(id textproc.TermID) int32
	// MaxCosImpact bounds the lnc cosine partial (1+ln tf)/‖d‖.
	MaxCosImpact(id textproc.TermID) float64
	// MaxBM25Impact bounds the BM25 tf-saturation factor for any
	// document length (see index.BM25TFBound).
	MaxBM25Impact(id textproc.TermID) float64
}

// BlockSource is the optional Source extension that fuels block-max
// WAND: per-term postings iterators carrying per-block impact bounds.
// *index.Index implements it natively (blocks computed by Build and
// Merge, persisted by the codec); live shards delegate to their
// sealed index, while memtable iterators carry no blocks and fall
// back to term-level bounds.
type BlockSource interface {
	// BlockIterInto repositions it over the term's postings; when the
	// source has per-block metadata the iterator carries it
	// (Iterator.HasBlocks).
	BlockIterInto(id textproc.TermID, it *index.Iterator)
	// HasBlocks reports whether BlockIter actually hands out per-block
	// bounds. A source may satisfy the interface structurally while
	// degrading to plain iterators (a live memtable, whose lists grow
	// in place); ExecAuto only routes to block-max WAND when real
	// blocks are present, since degraded WAND loses the block skips
	// that justify it over MaxScore.
	HasBlocks() bool
}

// headSource is the optional BlockSource extension that fuels top-k
// threshold priming: each list's impact-ordered head (its
// highest-bound blocks, strongest first) and the per-block bounds
// themselves, readable without positioning an iterator or decoding
// anything. *index.Index implements it natively (heads computed by
// Build and Merge, persisted by the v5 codec); live shards delegate to
// their sealed index. Sources without it simply skip priming — the
// pruned loops then start from an unprimed threshold, exactly the
// pre-head behavior.
type headSource interface {
	HeadOrder(id textproc.TermID) []int32
	BlockMaxes(id textproc.TermID) []index.BlockMax
}

// ExecStats counts the work one query performed; returned in every
// Response (and passed to SearchTermsExec by the legacy surface) to
// measure pruning effectiveness. All counters are per-call (the engine
// never retains them). The JSON form is what the HTTP server's search
// responses carry.
type ExecStats struct {
	// DocsScored is the number of documents whose full score was
	// computed.
	DocsScored int `json:"docs_scored"`
	// DocsPruned is the number of candidate documents MaxScore
	// abandoned on a bound check before fully scoring them.
	DocsPruned int `json:"docs_pruned,omitempty"`
	// DocsFiltered is the number of documents the keep predicate
	// (tombstones) rejected before any scoring.
	DocsFiltered int `json:"docs_filtered,omitempty"`
	// Postings is the number of postings visited by the exhaustive
	// path (0 under MaxScore and block-max WAND, which touch lists
	// lazily).
	Postings int `json:"postings,omitempty"`
	// BlockSkips is the number of pivot candidates block-max WAND
	// discarded on the per-block bound check alone — each one also
	// counts in DocsPruned.
	BlockSkips int `json:"block_skips,omitempty"`
	// SeekProbes is the total number of document comparisons the
	// query's iterators made under SeekGE — the traversal cost the
	// pruned modes pay for skipping instead of scanning.
	SeekProbes int `json:"seek_probes,omitempty"`
	// BlocksDecoded is how many compressed postings blocks were
	// actually decoded; blocks passed over by seeks and block skips
	// never decode, so this against Postings/index.BlockSize shows the
	// decode work pruning saved. 0 over uncompressed sources.
	BlocksDecoded int `json:"blocks_decoded,omitempty"`
	// HeadBlocksPrimed is how many impact-ordered head blocks the
	// pruned modes decoded up front to seed the top-k threshold before
	// doc-ordered traversal began (their decodes also count in
	// BlocksDecoded).
	HeadBlocksPrimed int `json:"head_blocks_primed,omitempty"`
}

// add accumulates other into s (used by segmented fan-out).
func (s *ExecStats) Add(other ExecStats) {
	s.DocsScored += other.DocsScored
	s.DocsPruned += other.DocsPruned
	s.DocsFiltered += other.DocsFiltered
	s.Postings += other.Postings
	s.BlockSkips += other.BlockSkips
	s.SeekProbes += other.SeekProbes
	s.BlocksDecoded += other.BlocksDecoded
	s.HeadBlocksPrimed += other.HeadBlocksPrimed
}

// harvestIterStats folds each iterator's cumulative seek-probe and
// block-decode counters into stats, once at the end of an execution
// loop (the counters reset when the pooled iterators are repositioned
// for the next query).
func harvestIterStats(its []index.Iterator, stats *ExecStats) {
	if stats == nil {
		return
	}
	for i := range its {
		stats.SeekProbes += its[i].SeekProbes()
		stats.BlocksDecoded += its[i].BlocksDecoded()
	}
}

// lnTFTable caches the lnc document weight 1+ln(tf) for small term
// frequencies — the overwhelmingly common case — so the per-posting
// hot path avoids a math.Log call. Entries equal the direct
// computation bit-for-bit (math.Log is deterministic), so cached and
// uncached paths score identically.
var lnTFTable = func() [64]float64 {
	var t [64]float64
	for i := 1; i < len(t); i++ {
		t[i] = 1 + math.Log(float64(i))
	}
	return t
}()

// docWeight returns the lnc document weight 1+ln(tf).
func docWeight(tf int32) float64 {
	if tf > 0 && int(tf) < len(lnTFTable) {
		return lnTFTable[tf]
	}
	return 1 + math.Log(float64(tf))
}

// qterm is one resolved query term. Terms are kept sorted by ascending
// TermID — the canonical accumulation order both execution paths share
// so their floating-point scores agree bit-for-bit.
type qterm struct {
	id  textproc.TermID
	qtf int     // query-side term frequency
	w   float64 // query weight: cosine (1+ln qtf)·idf, BM25 idf
	ub  float64 // max contribution of this term to any final score
	// Block-max WAND caches the current block's contribution bound so
	// repeated pivots inside one block pay no recomputation. bbBlk is
	// the block ordinal the cache is valid for (-1 = none).
	bb    float64
	bbBlk int
}

// queryState is the pooled per-query scratch space: the resolved term
// bag, flat score accumulators (replacing the old map accumulator),
// the top-k heap, and the MaxScore ordering buffers. One queryState
// serves one query at a time; engines keep them in a sync.Pool.
type queryState struct {
	terms []qterm
	// its holds one postings iterator per resolved term, parallel to
	// terms and filled by each execution strategy at entry. It lives
	// outside qterm because an iterator carries its own block-decode
	// buffer (~1 KiB): keeping terms small keeps their sort and dedup
	// cheap, while the buffers still come from the pool, not the heap.
	its     []index.Iterator
	score   []float64      // flat accumulator indexed by local doc ID
	stamp   []uint32       // generation marks: gen = alive, gen+1 = dead
	touched []corpus.DocID // alive docs hit this query
	gen     uint32
	heap    resultHeap
	ord     []int          // MaxScore: term indexes by ascending ub; block-max: live lists by doc
	prefix  []float64      // MaxScore: prefix sums of ub; block-max: per-involved block bounds
	inv     []int          // block-max: live positions on the current pivot
	docs    []corpus.DocID // block-max: cached current doc per live list
	ubs     []float64      // block-max: cached term bound per live list
	contrib []float64      // per-term raw contribution of the current candidate
	prime   []primeEntry   // threshold priming: candidate head blocks
	avgLen  float64        // BM25: collection average length, read once per query
	// clock times the query's phases when telemetry or an inline trace
	// is requested; effMode records the execution strategy actually
	// chosen (after ExecAuto resolution) for labeling.
	clock   phaseClock
	effMode ExecMode
}

// iterSlots returns n pooled iterator slots (contents unspecified; the
// caller assigns every slot it uses).
func (qs *queryState) iterSlots(n int) []index.Iterator {
	if cap(qs.its) < n {
		qs.its = make([]index.Iterator, n)
	}
	return qs.its[:n]
}

// reset prepares the state for a new query, bumping the stamp
// generation instead of clearing the accumulator arrays.
func (qs *queryState) reset() {
	qs.terms = qs.terms[:0]
	qs.touched = qs.touched[:0]
	qs.heap = qs.heap[:0]
	qs.ord = qs.ord[:0]
	qs.prefix = qs.prefix[:0]
	qs.inv = qs.inv[:0]
	qs.docs = qs.docs[:0]
	qs.ubs = qs.ubs[:0]
	qs.prime = qs.prime[:0]
	qs.gen += 2
	if qs.gen == 0 { // wrapped: stale stamps could collide
		for i := range qs.stamp {
			qs.stamp[i] = 0
		}
		qs.gen = 2
	}
}

// ensureDoc grows the flat accumulators to cover local doc ID d.
func (qs *queryState) ensureDoc(d corpus.DocID) {
	need := int(d) + 1
	if need <= len(qs.score) {
		return
	}
	if need <= cap(qs.score) {
		qs.score = qs.score[:need]
		qs.stamp = qs.stamp[:need]
		return
	}
	ns := make([]float64, need, need+need/2)
	copy(ns, qs.score)
	qs.score = ns
	nst := make([]uint32, need, need+need/2)
	copy(nst, qs.stamp)
	qs.stamp = nst
}

// resolveTerms builds the deduplicated, TermID-sorted term bag in
// qs.terms. Returns false when no query term is in the dictionary.
func (e *Engine) resolveTerms(qs *queryState, terms []string) bool {
	vocab := e.src.Vocab()
	for _, term := range terms {
		id := vocab.ID(term)
		if id == textproc.InvalidTerm {
			continue
		}
		qs.terms = append(qs.terms, qterm{id: id, qtf: 1})
	}
	if len(qs.terms) == 0 {
		return false
	}
	// Insertion sort by TermID: queries are a handful of terms, and
	// avoiding sort.Slice keeps the pooled path allocation-free.
	for i := 1; i < len(qs.terms); i++ {
		for j := i; j > 0 && qs.terms[j].id < qs.terms[j-1].id; j-- {
			qs.terms[j], qs.terms[j-1] = qs.terms[j-1], qs.terms[j]
		}
	}
	// Merge duplicates in place, summing query tf.
	out := qs.terms[:1]
	for _, t := range qs.terms[1:] {
		if last := &out[len(out)-1]; last.id == t.id {
			last.qtf += t.qtf
		} else {
			out = append(out, t)
		}
	}
	qs.terms = out
	return true
}

// weighTerms fills per-term query weights and (when impacts are
// available) contribution upper bounds. Returns the cosine query norm
// (1 for BM25). A zero return means the query matches nothing.
func (e *Engine) weighTerms(qs *queryState) float64 {
	switch e.scoring {
	case BM25:
		n := float64(e.src.NumDocs())
		qs.avgLen = e.src.AvgDocLen()
		for i := range qs.terms {
			t := &qs.terms[i]
			df := float64(e.src.DocFreq(t.id))
			if df == 0 {
				t.w = 0
				continue
			}
			t.w = math.Log(1 + (n-df+0.5)/(df+0.5))
			if e.impacts != nil {
				t.ub = t.w * e.impacts.MaxBM25Impact(t.id)
			}
		}
		return 1
	default: // Cosine
		qnorm := 0.0
		for i := range qs.terms {
			t := &qs.terms[i]
			t.w = (1 + math.Log(float64(t.qtf))) * e.src.IDF(t.id)
			qnorm += t.w * t.w
		}
		qnorm = math.Sqrt(qnorm)
		if qnorm == 0 {
			return 0
		}
		if e.impacts != nil {
			for i := range qs.terms {
				t := &qs.terms[i]
				t.ub = t.w * e.impacts.MaxCosImpact(t.id) / qnorm
			}
		}
		return qnorm
	}
}

// weighTermsGlobal is weighTerms with the collection statistics (N,
// df, avgdl) replaced by cluster-merged values from a router. Postings,
// norms and impact bounds stay shard-local; only the query-side weights
// change, so every shard of a scatter-gather cycle scores exactly as a
// single index over the whole cluster would. terms is the wire-order
// request bag that g.DF aligns with.
//
// The cosine query norm is computed over the wire-order bag — including
// terms this shard's dictionary lacks but other shards hold — so all
// shards derive the same norm from the same inputs in the same order.
func (e *Engine) weighTermsGlobal(qs *queryState, terms []string, g *GlobalStats) float64 {
	n := float64(g.Docs)
	// Collapse the aligned (term, df) pairs to one df per distinct term
	// string; repeated terms carry repeated df values.
	gdf := make(map[string]int, len(terms))
	for i, term := range terms {
		if _, ok := gdf[term]; !ok {
			gdf[term] = g.DF[i]
		}
	}
	vocab := e.src.Vocab()
	switch e.scoring {
	case BM25:
		if g.Docs == 0 {
			return 0
		}
		qs.avgLen = float64(g.TotalLen) / float64(g.Docs)
		for i := range qs.terms {
			t := &qs.terms[i]
			df := float64(gdf[vocab.Term(t.id)])
			if df == 0 {
				t.w = 0
				continue
			}
			t.w = math.Log(1 + (n-df+0.5)/(df+0.5))
			if e.impacts != nil {
				t.ub = t.w * e.impacts.MaxBM25Impact(t.id)
			}
		}
		return 1
	default: // Cosine
		// Wire-order norm: dedup by term string in first-occurrence
		// order, qtf = occurrence count, weight from the merged df. This
		// mirrors what a single engine computes over its resolved bag up
		// to summation order.
		qnorm := 0.0
		seen := make(map[string]bool, len(terms))
		for i, term := range terms {
			if seen[term] {
				continue
			}
			seen[term] = true
			df := gdf[term]
			if df == 0 {
				continue
			}
			qtf := 0
			for _, t2 := range terms[i:] {
				if t2 == term {
					qtf++
				}
			}
			w := (1 + math.Log(float64(qtf))) * math.Log(1+n/float64(df))
			qnorm += w * w
		}
		qnorm = math.Sqrt(qnorm)
		if qnorm == 0 {
			return 0
		}
		for i := range qs.terms {
			t := &qs.terms[i]
			df := gdf[vocab.Term(t.id)]
			if df == 0 {
				t.w = 0
				continue
			}
			t.w = (1 + math.Log(float64(t.qtf))) * math.Log(1+n/float64(df))
			if e.impacts != nil {
				t.ub = t.w * e.impacts.MaxCosImpact(t.id) / qnorm
			}
		}
		return qnorm
	}
}

// cancelStride is how many postings (exhaustive) or candidates
// (pruned modes) are processed between context polls — a few blocks'
// worth of work, so cancellation lands between blocks without a
// channel read in the per-posting hot path.
const cancelStride = 4096

// canceled polls a context's done channel. A nil channel (background
// context) costs one predictable branch.
func canceled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// searchExhaustive scores every posting of every query term into the
// flat accumulator — the reference semantics. Lists are traversed
// block-at-a-time through their iterators (decoding compressed blocks
// into the iterator's buffer, never materializing a list); the keep
// filter is consulted once per document, before any contribution
// lands. The context is polled every cancelStride postings, between
// blocks.
func (e *Engine) searchExhaustive(ctx context.Context, qs *queryState, k int, qnorm float64, keep func(corpus.DocID) bool, stats *ExecStats) ([]Result, error) {
	done := ctx.Done()
	genAlive, genDead := qs.gen, qs.gen+1
	// Size the accumulator once, off the lists' final entries (block
	// metadata — no decoding).
	its := qs.iterSlots(len(qs.terms))
	for i := range qs.terms {
		e.src.IterInto(qs.terms[i].id, &its[i])
		if its[i].Valid() {
			qs.ensureDoc(its[i].LastDoc())
		}
	}
	qs.clock.mark(&qs.clock.fetch)
	for i := range qs.terms {
		t, it := &qs.terms[i], &its[i]
		if t.w == 0 || !it.Valid() {
			continue
		}
		if stats != nil {
			stats.Postings += it.Len()
		}
		if canceled(done) {
			return nil, ctx.Err()
		}
		sinceCancel := 0
		for {
			docs, tfs := it.Window()
			if sinceCancel += len(docs); sinceCancel >= cancelStride {
				sinceCancel = 0
				if canceled(done) {
					return nil, ctx.Err()
				}
			}
			for j, d := range docs {
				st := qs.stamp[d]
				if st == genDead {
					continue
				}
				if st != genAlive {
					if keep != nil && !keep(d) {
						qs.stamp[d] = genDead
						if stats != nil {
							stats.DocsFiltered++
						}
						continue
					}
					qs.stamp[d] = genAlive
					qs.score[d] = 0
					qs.touched = append(qs.touched, d)
				}
				qs.score[d] += e.rawContribution(qs, t, tfs[j], d)
			}
			if !it.NextWindow() {
				break
			}
		}
	}
	if stats != nil {
		stats.DocsScored += len(qs.touched)
	}
	harvestIterStats(its, stats)
	qs.clock.mark(&qs.clock.traverse)
	for _, d := range qs.touched {
		s := e.finalizeScore(qs.score[d], d, qnorm)
		pushTopK(&qs.heap, k, Result{Doc: d, Score: s})
	}
	res := drainTopK(&qs.heap)
	qs.clock.mark(&qs.clock.merge)
	return res, nil
}

// sharedImpact is the query-independent factor of one posting's
// contribution: the lnc document weight 1+ln(tf) for cosine, the BM25
// tf-saturation factor for BM25. rawContribution multiplies it by the
// per-query term weight; the batch traversal computes it once per
// posting and fans it out to every cycle member containing the term,
// which is what makes shared execution both cheaper and bit-identical.
func (e *Engine) sharedImpact(avgLen float64, tf int32, d corpus.DocID) float64 {
	if e.scoring == BM25 {
		ftf := float64(tf)
		dl := float64(e.src.DocLen(d))
		denom := ftf + bm25K1*(1-bm25B+bm25B*dl/avgLen)
		return ftf * (bm25K1 + 1) / denom
	}
	return docWeight(tf)
}

// rawContribution is one term's unnormalized addition to a document's
// score: cosine w·(1+ln tf) (the lnc dot-product part), BM25
// idf·saturation. Every execution path accumulates exactly this
// expression — the per-query weight times the shared impact factor —
// in exactly TermID order, which is what makes their floating-point
// results identical.
func (e *Engine) rawContribution(qs *queryState, t *qterm, tf int32, d corpus.DocID) float64 {
	return t.w * e.sharedImpact(qs.avgLen, tf, d)
}

// finalizeScore applies the per-document normalization (cosine) and
// the static prior, in the same operation order for both paths.
func (e *Engine) finalizeScore(raw float64, d corpus.DocID, qnorm float64) float64 {
	s := raw
	if e.scoring != BM25 {
		if n := e.norm(d); n > 0 {
			s /= n * qnorm
		}
	}
	if e.prior != nil && int(d) < len(e.prior) {
		s *= e.prior[d]
	}
	return s
}

// primeEntry is one candidate head block for threshold priming: a
// term's block and the upper bound on that block's best single-term
// contribution, in final-score units.
type primeEntry struct {
	term, block int32
	bound       float64
}

// better orders prime entries strongest bound first, ties broken by
// term then block so the decode order — and therefore every primed
// query's floating-point state — is deterministic.
func (a primeEntry) better(b primeEntry) bool {
	if a.bound != b.bound {
		return a.bound > b.bound
	}
	if a.term != b.term {
		return a.term < b.term
	}
	return a.block < b.block
}

// primeBudget caps how many head blocks one query decodes to seed the
// threshold. A handful of the strongest blocks almost always yields k
// high-scoring documents (BlockSize postings each), while keeping the
// worst case — priming that fails to fill a top-k — bounded at a few
// microseconds of kernel-decoded work.
const primeBudget = 4

// primeTheta seeds the top-k threshold for the pruned execution loops
// by decoding up to primeBudget impact-ordered head blocks (strongest
// single-term bound first, across all query terms) and fully scoring
// the documents they surface. It returns a threshold strictly below
// the k-th best primed score — or -Inf when priming is unavailable or
// surfaces fewer than k documents — that the caller starts its main
// loop from instead of -Inf.
//
// Soundness: each primed document's accumulated partial is a lower
// bound on its true raw score (a term's blocks partition its list, so
// no contribution is counted twice, and every contribution is
// non-negative), and finalizeScore is monotone in the raw score for a
// fixed document. So k documents have true final scores at or above
// the k-th primed partial, and the returned threshold backs off
// strictly below it with margin to spare for the bound checks'
// floating-point rescaling: any candidate the main loop prunes at
// this threshold has true score strictly below k others and can never
// enter the top-k — ties included — leaving results bit-identical to
// the exhaustive oracle. The keep filter is applied before any
// primed document enters the accumulator, so tombstoned documents
// cannot inflate the threshold. The primed heap and accumulator are
// discarded: the main loop rescoring from scratch is what keeps its
// floating-point sums canonical.
func (e *Engine) primeTheta(qs *queryState, k int, qnorm float64, keep func(corpus.DocID) bool, stats *ExecStats) float64 {
	noPrime := math.Inf(-1)
	if k <= 0 || e.blockSrc == nil || !e.blockSrc.HasBlocks() {
		return noPrime
	}
	hs, ok := e.blockSrc.(headSource)
	if !ok {
		return noPrime
	}
	entries := qs.prime[:0]
	for i := range qs.terms {
		t := &qs.terms[i]
		if t.w == 0 || t.ub <= 0 {
			continue
		}
		head := hs.HeadOrder(t.id)
		if len(head) == 0 {
			continue
		}
		bms := hs.BlockMaxes(t.id)
		for _, ord := range head {
			bm := bms[ord]
			var b float64
			if e.scoring == BM25 {
				b = t.w * bm.MaxBM
			} else {
				b = t.w * bm.MaxCos / qnorm
			}
			if b > 0 {
				entries = append(entries, primeEntry{term: int32(i), block: ord, bound: b})
			}
		}
	}
	qs.prime = entries
	if len(entries) == 0 {
		return noPrime
	}
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j].better(entries[j-1]); j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	genAlive, genDead := qs.gen, qs.gen+1
	its := qs.iterSlots(len(qs.terms))
	primed := 0
	for idx := 0; idx < len(entries) && primed < primeBudget; idx++ {
		ent := entries[idx]
		t := &qs.terms[ent.term]
		it := &its[ent.term]
		// Reposition per entry: EnterBlock needs a compressed-mode
		// iterator, and the main loop re-repositions every slot anyway.
		e.blockSrc.BlockIterInto(t.id, it)
		if !it.Valid() {
			continue
		}
		if ent.block != 0 && !it.EnterBlock(int(ent.block)) {
			continue
		}
		qs.ensureDoc(it.BlockLastDoc())
		docs, tfs := it.Window()
		for j, d := range docs {
			st := qs.stamp[d]
			if st == genDead {
				continue
			}
			if st != genAlive {
				if keep != nil && !keep(d) {
					qs.stamp[d] = genDead
					continue
				}
				qs.stamp[d] = genAlive
				qs.score[d] = 0
				qs.touched = append(qs.touched, d)
			}
			qs.score[d] += e.rawContribution(qs, t, tfs[j], d)
		}
		if stats != nil {
			stats.BlocksDecoded += it.BlocksDecoded()
			stats.HeadBlocksPrimed++
		}
		primed++
	}
	theta := noPrime
	if len(qs.touched) >= k {
		for _, d := range qs.touched {
			pushTopK(&qs.heap, k, Result{Doc: d, Score: e.finalizeScore(qs.score[d], d, qnorm)})
		}
		// Back the threshold off the k-th primed score by a relative
		// margin that dwarfs floating-point error, not just one ulp: the
		// main loops' bound checks rescale the threshold ((theta −
		// prefix)·den), and a primed document reappearing in the main
		// loop can beat the k-th primed score by exactly one ulp — a
		// sub-rounding margin that a single multiply can erase, pruning
		// a true result. 1e-9 relative slack (scores are non-negative)
		// is ~10⁶ ulps of headroom at any magnitude while costing
		// pruning nothing measurable.
		kth := qs.heap[0].Score
		theta = kth * (1 - 1e-9)
		if theta >= kth { // kth = 0 (or denormal): fall back to one step down
			theta = math.Nextafter(kth, noPrime)
		}
		qs.heap = qs.heap[:0]
	}
	qs.touched = qs.touched[:0]
	return theta
}

// searchMaxScore is the document-at-a-time MaxScore loop. Terms are
// ordered by ascending contribution bound; the lists whose prefix sum
// of bounds cannot reach the current k-th best score become
// non-essential and are consulted only by SeekGE for documents the
// essential lists surface. Candidates are abandoned mid-evaluation
// once their partial score plus the remaining bounds drops to or under
// the threshold — safe on ties because traversal is in ascending doc
// order and the ranking prefers smaller IDs at equal scores. The
// context is polled every few hundred candidates.
func (e *Engine) searchMaxScore(ctx context.Context, qs *queryState, k int, qnorm float64, keep func(corpus.DocID) bool, stats *ExecStats) ([]Result, error) {
	done := ctx.Done()
	rounds := 0
	n := len(qs.terms)
	// Seed the threshold from the impact-ordered heads before any list
	// is positioned: every bound check below starts against the k-th
	// best primed score instead of -Inf, so pruning bites from the
	// first candidate.
	theta := e.primeTheta(qs, k, qnorm, keep, stats)
	its := qs.iterSlots(n)
	// curDocs caches each list's current document (drained sentinel
	// when exhausted) so the per-candidate scans touch one compact
	// array instead of striding across the iterators' decode buffers.
	const drained = corpus.DocID(math.MaxInt32)
	curDocs := qs.docs[:0]
	for i := range qs.terms {
		e.src.IterInto(qs.terms[i].id, &its[i])
		qs.ord = append(qs.ord, i)
		if its[i].Valid() {
			curDocs = append(curDocs, its[i].Doc())
		} else {
			curDocs = append(curDocs, drained)
		}
	}
	qs.docs = curDocs
	if cap(qs.contrib) < n {
		qs.contrib = make([]float64, n)
	} else {
		qs.contrib = qs.contrib[:n]
	}
	ord := qs.ord
	// Insertion sort by ascending bound (ties by TermID): allocation-
	// free, and n is the query's distinct term count.
	ubLess := func(a, b int) bool {
		ta, tb := &qs.terms[a], &qs.terms[b]
		if ta.ub != tb.ub {
			return ta.ub < tb.ub
		}
		return ta.id < tb.id
	}
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0 && ubLess(ord[j], ord[j-1]); j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	sum := 0.0
	for _, i := range ord {
		sum += qs.terms[i].ub
		qs.prefix = append(qs.prefix, sum)
	}
	qs.clock.mark(&qs.clock.fetch)

	first := 0 // ord[first:] are the essential lists
	for first < n && qs.prefix[first] <= theta {
		first++ // lists non-essential from the start under the primed threshold
	}
	for first < n {
		if rounds++; rounds&255 == 1 && canceled(done) {
			return nil, ctx.Err()
		}
		// Pick the next candidate: the smallest current doc among the
		// essential iterators.
		cand := drained
		for _, i := range ord[first:] {
			if curDocs[i] < cand {
				cand = curDocs[i]
			}
		}
		if cand == drained {
			break
		}
		if keep != nil && !keep(cand) {
			if stats != nil {
				stats.DocsFiltered++
			}
			for _, i := range ord[first:] {
				if curDocs[i] == cand {
					if its[i].Next() {
						curDocs[i] = its[i].Doc()
					} else {
						curDocs[i] = drained
					}
				}
			}
			continue
		}
		// Score the essential lists at the candidate. Contributions are
		// kept per term in raw units for the canonical final sum; bound
		// checks stay in raw units too, scaling the threshold by the
		// candidate's normalization denominator instead of dividing
		// every partial — a multiplication per check, not a division
		// per candidate.
		for i := 0; i < n; i++ {
			qs.contrib[i] = 0
		}
		den := 1.0
		if e.scoring != BM25 {
			if nd := e.norm(cand); nd > 0 {
				den = nd * qnorm
			}
		}
		partial := 0.0
		for _, i := range ord[first:] {
			if curDocs[i] == cand {
				it := &its[i]
				raw := e.rawContribution(qs, &qs.terms[i], it.TF(), cand)
				qs.contrib[i] = raw
				partial += raw
				if it.Next() {
					curDocs[i] = it.Doc()
				} else {
					curDocs[i] = drained
				}
			}
		}
		// Non-essential lists, strongest bound first: stop as soon as
		// the candidate can no longer reach the threshold. In raw
		// units: partial/den + prefix[j] <= θ  ⟺  partial <= (θ −
		// prefix[j])·den (den > 0).
		pruned := false
		for j := first - 1; j >= 0; j-- {
			if partial <= (theta-qs.prefix[j])*den {
				pruned = true
				break
			}
			it := &its[ord[j]]
			if it.SeekGE(cand) {
				curDocs[ord[j]] = it.Doc()
				if it.Doc() == cand {
					raw := e.rawContribution(qs, &qs.terms[ord[j]], it.TF(), cand)
					qs.contrib[ord[j]] = raw
					partial += raw
				}
			} else {
				curDocs[ord[j]] = drained
			}
		}
		if pruned {
			if stats != nil {
				stats.DocsPruned++
			}
			continue
		}
		if stats != nil {
			stats.DocsScored++
		}
		// Canonical final score: sum the raw contributions in TermID
		// order (absent terms add +0.0, which is exact), then normalize
		// — bit-identical to the exhaustive accumulator.
		raw := 0.0
		for i := 0; i < n; i++ {
			raw += qs.contrib[i]
		}
		s := e.finalizeScore(raw, cand, qnorm)
		pushTopK(&qs.heap, k, Result{Doc: cand, Score: s})
		if len(qs.heap) == k {
			if nt := qs.heap[0].Score; nt > theta {
				theta = nt
				for first < n && qs.prefix[first] <= theta {
					first++
				}
			}
		}
	}
	harvestIterStats(its, stats)
	qs.clock.mark(&qs.clock.traverse)
	res := drainTopK(&qs.heap)
	qs.clock.mark(&qs.clock.merge)
	return res, nil
}

// blockBound is one term's upper bound on its contribution to the
// current pivot's final score, read from the iterator's current block
// when the source carries block metadata and falling back to the
// term-level bound otherwise. Like qterm.ub it is in final-score
// units: the cosine block maximum already folds in each document's
// norm, so only the query norm divides; the static prior multiplies
// scores by at most 1 and never loosens the bound. The bound is
// cached per block, so consecutive pivots inside one block pay a
// comparison, not a divide.
func (e *Engine) blockBound(t *qterm, it *index.Iterator, qnorm float64) float64 {
	if !it.HasBlocks() {
		return t.ub
	}
	blk := it.BlockIndex()
	if blk == t.bbBlk {
		return t.bb
	}
	bm := it.BlockMax()
	var b float64
	if e.scoring == BM25 {
		b = t.w * bm.MaxBM
	} else {
		b = t.w * bm.MaxCos / qnorm
	}
	t.bbBlk, t.bb = blk, b
	return b
}

// searchBlockMax is the block-max WAND loop. Live lists are kept
// ordered by their current document (cached in qs.docs so the sort
// never touches the postings); the pivot — the smallest document
// whose cumulative term-level bounds could still beat the k-th best
// score — is then re-checked against the per-block maxima of the
// lists that actually contain it. When even the block bounds cannot
// reach the threshold, every involved list skips to just past its
// current block (capped by the next uninvolved list's position),
// discarding up to index.BlockSize postings per list on a single
// comparison. Surviving pivots are evaluated strongest block bound
// first with the same mid-evaluation abandonment MaxScore applies,
// and fully evaluated documents sum their raw contributions in
// ascending TermID order and normalize exactly as the exhaustive
// oracle does, so results — documents, ranks, and floating-point
// scores — are identical. Safe on ties for the same reason
// searchMaxScore is: traversal is in ascending document order and the
// heap prefers smaller IDs at equal scores, so a candidate that can
// at best tie the threshold can never enter. The context is polled
// every few hundred pivots — between blocks, never inside one.
func (e *Engine) searchBlockMax(ctx context.Context, qs *queryState, k int, qnorm float64, keep func(corpus.DocID) bool, stats *ExecStats) ([]Result, error) {
	done := ctx.Done()
	rounds := 0
	// Seed the threshold from the impact-ordered heads (see primeTheta)
	// so pivot selection and block skips bite from the first round.
	theta := e.primeTheta(qs, k, qnorm, keep, stats)
	// drained marks exhausted lists in the doc cache; they sort to the
	// end and are compacted away before the next round.
	const drained = corpus.DocID(math.MaxInt32)
	live, docs, ubs := qs.ord[:0], qs.docs[:0], qs.ubs[:0]
	its := qs.iterSlots(len(qs.terms))
	for i := range qs.terms {
		t := &qs.terms[i]
		if e.blockSrc != nil {
			e.blockSrc.BlockIterInto(t.id, &its[i])
		} else {
			e.src.IterInto(t.id, &its[i])
		}
		t.bbBlk = -1
		if t.w != 0 && its[i].Valid() {
			live = append(live, i)
			docs = append(docs, its[i].Doc())
			ubs = append(ubs, t.ub)
		}
	}
	qs.ord, qs.docs, qs.ubs = live, docs, ubs
	qs.clock.mark(&qs.clock.fetch)

	dirty := false // drained sentinels present in docs
	for len(live) > 0 {
		if rounds++; rounds&255 == 1 && canceled(done) {
			return nil, ctx.Err()
		}
		if dirty {
			dirty = false
			out := 0
			for i := range live {
				if docs[i] != drained {
					live[out], docs[out], ubs[out] = live[i], docs[i], ubs[i]
					out++
				}
			}
			live, docs, ubs = live[:out], docs[:out], ubs[:out]
			if len(live) == 0 {
				break
			}
		}
		// Keep live lists ordered by current document. Insertion sort
		// over the cached docs: lists barely move between rounds, so
		// this is near-linear in the handful of query terms.
		for i := 1; i < len(live); i++ {
			for j := i; j > 0 && docs[j] < docs[j-1]; j-- {
				docs[j], docs[j-1] = docs[j-1], docs[j]
				live[j], live[j-1] = live[j-1], live[j]
				ubs[j], ubs[j-1] = ubs[j-1], ubs[j]
			}
		}
		// Pivot: the first document at which the cumulative term-level
		// bounds of every list at or before it exceed the threshold.
		// Documents below it can appear only in a prefix of lists whose
		// bounds sum to <= theta, so none of them can enter the heap.
		sum, p := 0.0, -1
		for i, ub := range ubs {
			sum += ub
			if sum > theta {
				p = i
				break
			}
		}
		if p < 0 {
			break // all remaining lists together cannot beat theta
		}
		pivot := docs[p]
		// Gather the involved lists with their per-block bounds, and
		// the nearest uninvolved document (it caps any block skip).
		// Lists before the pivot hold only non-competitive documents:
		// bring them up to it, collecting the ones that land exactly
		// on it. The rest of the involved set is the sorted run of
		// at-pivot lists starting at p, so nothing beyond the run is
		// scanned — the first list past it is the nearest uninvolved
		// document.
		inv, bounds := qs.inv[:0], qs.prefix[:0]
		blockSum := 0.0
		minOther := drained
		for i := 0; i < p; i++ {
			it := &its[live[i]]
			if !it.SeekGE(pivot) {
				docs[i] = drained
				dirty = true
				continue
			}
			d := it.Doc()
			docs[i] = d
			if d == pivot {
				inv = append(inv, i)
				b := e.blockBound(&qs.terms[live[i]], it, qnorm)
				bounds = append(bounds, b)
				blockSum += b
			} else if d < minOther {
				minOther = d
			}
		}
		r := p
		for r < len(live) && docs[r] == pivot {
			inv = append(inv, r)
			b := e.blockBound(&qs.terms[live[r]], &its[live[r]], qnorm)
			bounds = append(bounds, b)
			blockSum += b
			r++
		}
		if r < len(live) && docs[r] < minOther {
			minOther = docs[r]
		}
		qs.inv, qs.prefix = inv, bounds
		if blockSum <= theta {
			// No document from the pivot through the shortest involved
			// block can beat theta: within that span the involved lists
			// are the only possible contributors, and even their block
			// maxima fall short. Skip to the first document past the
			// span.
			next := minOther
			for _, li := range inv {
				if b := its[live[li]].BlockLastDoc(); b+1 < next {
					next = b + 1
				}
			}
			for _, li := range inv {
				// One seek per involved list: SeekGE walks the block
				// last-doc metadata from the current block, so every
				// block inside the skipped span is passed over without
				// being decoded — the compressed layout's block skip
				// discards the decode work along with the scoring work.
				it := &its[live[li]]
				if it.SeekGE(next) {
					docs[li] = it.Doc()
				} else {
					docs[li] = drained
					dirty = true
				}
			}
			if stats != nil {
				stats.DocsPruned++
				stats.BlockSkips++
			}
			continue
		}
		if keep != nil && !keep(pivot) {
			if stats != nil {
				stats.DocsFiltered++
			}
			for _, li := range inv {
				it := &its[live[li]]
				if it.Next() {
					docs[li] = it.Doc()
				} else {
					docs[li] = drained
					dirty = true
				}
			}
			continue
		}
		// Evaluate the involved lists strongest block bound first,
		// abandoning the pivot as soon as its partial score plus the
		// unconsulted bounds can no longer reach the threshold — the
		// same mid-evaluation test MaxScore applies, with tighter
		// block-level bounds. Contributions stay in raw units; bound
		// checks scale the threshold by the candidate's normalization
		// denominator instead (den > 0).
		for i := 1; i < len(inv); i++ {
			for j := i; j > 0 && bounds[j] > bounds[j-1]; j-- {
				bounds[j], bounds[j-1] = bounds[j-1], bounds[j]
				inv[j], inv[j-1] = inv[j-1], inv[j]
			}
		}
		den := 1.0
		if e.scoring != BM25 {
			if nd := e.norm(pivot); nd > 0 {
				den = nd * qnorm
			}
		}
		craw := qs.contrib[:0]
		partial, remaining := 0.0, blockSum
		pruned := false
		for i, li := range inv {
			// Before consulting the next list: can the rest still lift
			// the pivot over theta? partial/den + remaining <= theta ⟺
			// partial <= (theta − remaining)·den. (The i = 0 case is
			// the blockSum test above; a candidate that survives every
			// check is scored canonically and the heap decides.)
			if i > 0 && partial <= (theta-remaining)*den {
				pruned = true
				break
			}
			remaining -= bounds[i]
			raw := e.rawContribution(qs, &qs.terms[live[li]], its[live[li]].TF(), pivot)
			craw = append(craw, raw)
			partial += raw
		}
		qs.contrib = craw
		for _, li := range inv {
			it := &its[live[li]]
			if it.Next() {
				docs[li] = it.Doc()
			} else {
				docs[li] = drained
				dirty = true
			}
		}
		if pruned {
			if stats != nil {
				stats.DocsPruned++
			}
			continue
		}
		if stats != nil {
			stats.DocsScored++
		}
		// Canonical final score: reorder the contributions by
		// ascending TermID (qs.terms is TermID-sorted, so ascending
		// term index) and sum in that order — bit-identical to the
		// exhaustive accumulator, which adds exactly these terms in
		// exactly this order.
		m := len(craw)
		for i := 1; i < m; i++ {
			for j := i; j > 0 && live[inv[j]] < live[inv[j-1]]; j-- {
				inv[j], inv[j-1] = inv[j-1], inv[j]
				craw[j], craw[j-1] = craw[j-1], craw[j]
			}
		}
		raw := 0.0
		for i := 0; i < m; i++ {
			raw += craw[i]
		}
		pushTopK(&qs.heap, k, Result{Doc: pivot, Score: e.finalizeScore(raw, pivot, qnorm)})
		if len(qs.heap) == k {
			if nt := qs.heap[0].Score; nt > theta {
				theta = nt
			}
		}
	}
	harvestIterStats(its, stats)
	qs.clock.mark(&qs.clock.traverse)
	res := drainTopK(&qs.heap)
	qs.clock.mark(&qs.clock.merge)
	return res, nil
}
