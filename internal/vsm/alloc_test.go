package vsm

import (
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/textproc"
)

// TestSearchAllocations pins the per-query allocation budget: with the
// pooled query state, a steady-state search should allocate only the
// returned result slice and the small constant overhead of sorting it
// — no term bags, no accumulators, no heaps.
func TestSearchAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts past the budget")
	}
	c, gt, err := corpus.Synthesize(corpus.GenSpec{
		Seed: 8, NumDocs: 400, NumTopics: 6, DocLenMin: 20, DocLenMax: 50,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	an := textproc.NewAnalyzer()
	terms := analyzeTerms(an, []string{gt.TopicWords[0][0], gt.TopicWords[0][1], gt.TopicWords[1][0]})
	for _, scoring := range []Scoring{Cosine, BM25} {
		eng, err := NewEngine(idx, an, scoring)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []ExecMode{ExecMaxScore, ExecBlockMax, ExecExhaustive} {
			// Warm the pool (and the accumulator growth) first.
			for i := 0; i < 8; i++ {
				eng.SearchTermsExec(terms, 10, nil, mode, nil)
			}
			avg := testing.AllocsPerRun(200, func() {
				if res := eng.SearchTermsExec(terms, 10, nil, mode, nil); len(res) == 0 {
					t.Fatal("no results")
				}
			})
			// Result slice + sort.Slice internals; anything near the old
			// map-accumulator behavior (hundreds) fails loudly.
			const budget = 8
			if avg > budget {
				t.Errorf("%v/%v: %.1f allocs per search, budget %d", scoring, mode, avg, budget)
			}
		}
	}
}
