package vsm

import (
	"math"
	"testing"
	"testing/quick"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/linkrank"
	"toppriv/internal/textproc"
)

func buildEngine(t *testing.T, scoring Scoring, texts ...string) *Engine {
	t.Helper()
	docs := make([]corpus.Document, len(texts))
	for i, text := range texts {
		docs[i] = corpus.Document{Text: text}
	}
	an := textproc.NewAnalyzer(textproc.WithStemming(false))
	c, err := corpus.Build(docs, an, textproc.PruneSpec{})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(idx, an, scoring)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSearchRanksRelevantFirst(t *testing.T) {
	for _, scoring := range []Scoring{Cosine, BM25} {
		e := buildEngine(t, scoring,
			"apache helicopter army weapons apache helicopter",
			"stock market investors trading volume",
			"apache webserver software configuration",
			"cooking recipes kitchen dinner",
		)
		res := e.Search("apache helicopter army", 10)
		if len(res) == 0 {
			t.Fatalf("%v: no results", scoring)
		}
		if res[0].Doc != 0 {
			t.Errorf("%v: top doc = %d, want 0 (results %v)", scoring, res[0].Doc, res)
		}
		// Documents sharing no query term must not appear.
		for _, r := range res {
			if r.Doc == 1 || r.Doc == 3 {
				t.Errorf("%v: irrelevant doc %d retrieved", scoring, r.Doc)
			}
		}
	}
}

func TestSearchScoresDescending(t *testing.T) {
	e := buildEngine(t, Cosine,
		"alpha beta gamma", "alpha beta", "alpha", "delta epsilon")
	res := e.Search("alpha beta gamma", 10)
	for i := 1; i < len(res); i++ {
		if res[i-1].Score < res[i].Score {
			t.Fatalf("scores not descending: %v", res)
		}
	}
}

func TestSearchTopKBound(t *testing.T) {
	e := buildEngine(t, Cosine,
		"x common", "y common", "z common", "w common", "v common")
	res := e.Search("common", 3)
	if len(res) != 3 {
		t.Errorf("k=3 returned %d results", len(res))
	}
	if res := e.Search("common", 0); res != nil {
		t.Error("k=0 should return nil")
	}
}

func TestSearchEmptyAndUnknown(t *testing.T) {
	e := buildEngine(t, Cosine, "alpha beta")
	if res := e.Search("", 5); res != nil {
		t.Error("empty query should return nil")
	}
	if res := e.Search("zzzz qqqq", 5); res != nil {
		t.Error("out-of-vocabulary query should return nil")
	}
	if res := e.Search("the and of", 5); res != nil {
		t.Error("stopword-only query should return nil")
	}
}

func TestCosineNormalization(t *testing.T) {
	// A short doc fully about the topic should beat a long doc that
	// mentions it once among much other content.
	e := buildEngine(t, Cosine,
		"apache helicopter",
		"apache one two three four five six seven eight nine ten eleven twelve",
	)
	res := e.Search("apache helicopter", 2)
	if len(res) != 2 || res[0].Doc != 0 {
		t.Errorf("normalization failed: %v", res)
	}
}

func TestBM25LengthNormalization(t *testing.T) {
	e := buildEngine(t, BM25,
		"apache helicopter",
		"apache one two three four five six seven eight nine ten eleven twelve",
	)
	res := e.Search("apache helicopter", 2)
	if len(res) != 2 || res[0].Doc != 0 {
		t.Errorf("BM25 length normalization failed: %v", res)
	}
}

func TestIDFDominates(t *testing.T) {
	// "rare" appears in one doc, "common" in all: a doc matching the rare
	// term should outrank one matching only the common term.
	e := buildEngine(t, Cosine,
		"rare common",
		"common filler1",
		"common filler2",
		"common filler3",
	)
	res := e.Search("rare common", 4)
	if res[0].Doc != 0 {
		t.Errorf("rare-term doc should rank first: %v", res)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	e := buildEngine(t, Cosine, "same text", "same text", "same text")
	for trial := 0; trial < 5; trial++ {
		res := e.Search("same text", 3)
		if len(res) != 3 {
			t.Fatalf("got %d results", len(res))
		}
		for i, r := range res {
			if r.Doc != corpus.DocID(i) {
				t.Fatalf("tie-break unstable: %v", res)
			}
		}
	}
}

func TestSearchTermsBypassesAnalysis(t *testing.T) {
	e := buildEngine(t, Cosine, "alpha beta", "gamma delta")
	res := e.SearchTerms([]string{"alpha"}, 5)
	if len(res) != 1 || res[0].Doc != 0 {
		t.Errorf("SearchTerms = %v", res)
	}
}

func TestNewEngineNilIndex(t *testing.T) {
	if _, err := NewEngine(nil, nil, Cosine); err == nil {
		t.Error("nil index should error")
	}
}

func TestScoringString(t *testing.T) {
	if Cosine.String() != "cosine" || BM25.String() != "bm25" {
		t.Error("Scoring.String broken")
	}
	if Scoring(99).String() == "" {
		t.Error("unknown scoring should still print")
	}
}

// Property: every cosine score lies in [0, 1+ε] (it is a normalized dot
// product of non-negative vectors).
func TestCosineScoreRange(t *testing.T) {
	spec := corpus.GenSpec{Seed: 9, NumDocs: 60, NumTopics: 5, DocLenMin: 20, DocLenMax: 40}
	c, gt, err := corpus.Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := index.Build(c)
	e, _ := NewEngine(idx, textproc.NewAnalyzer(), Cosine)
	qs, _ := corpus.Workload(gt, corpus.WorkloadSpec{Seed: 3, NumQueries: 30})
	for _, q := range qs {
		for _, r := range e.Search(q.Text(), 10) {
			if r.Score < 0 || r.Score > 1+1e-9 || math.IsNaN(r.Score) {
				t.Fatalf("cosine score %v out of range for query %q", r.Score, q.Text())
			}
		}
	}
}

// Property: adding an irrelevant document never changes which documents
// match a query (only scores via idf may shift).
func TestSearchMonotoneUnderIrrelevantDocs(t *testing.T) {
	f := func(seed int64) bool {
		spec := corpus.GenSpec{Seed: seed, NumDocs: 30, NumTopics: 4, DocLenMin: 15, DocLenMax: 25}
		c, gt, err := corpus.Synthesize(spec, nil)
		if err != nil {
			return false
		}
		idx, _ := index.Build(c)
		an := textproc.NewAnalyzer()
		e, _ := NewEngine(idx, an, Cosine)
		q := gt.TopicWords[0][0] + " " + gt.TopicWords[0][1]
		res := e.Search(q, 100)
		set := map[corpus.DocID]bool{}
		for _, r := range res {
			set[r.Doc] = true
		}
		// Every returned doc must actually contain a query term.
		terms := an.Analyze(q)
		for _, r := range res {
			found := false
			for _, term := range terms {
				for _, p := range idx.PostingsByTerm(term) {
					if p.Doc == r.Doc {
						found = true
					}
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestEngineWithPriorReordersTies(t *testing.T) {
	docs := []corpus.Document{
		{Text: "same text"},
		{Text: "same text"},
	}
	an := textproc.NewAnalyzer(textproc.WithStemming(false))
	c, err := corpus.Build(docs, an, textproc.PruneSpec{})
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := index.Build(c)
	// Without a prior, doc 0 wins the tie-break.
	plain, _ := NewEngine(idx, an, Cosine)
	res := plain.Search("same text", 2)
	if res[0].Doc != 0 {
		t.Fatalf("baseline tie-break broken: %v", res)
	}
	// A prior favoring doc 1 must flip the order.
	e, err := NewEngineWithPrior(idx, an, Cosine, []float64{0.1, 0.9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res = e.Search("same text", 2)
	if res[0].Doc != 1 {
		t.Fatalf("prior ignored: %v", res)
	}
	// Weight 0 is pure similarity: back to the tie-break.
	e0, err := NewEngineWithPrior(idx, an, Cosine, []float64{0.1, 0.9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	res = e0.Search("same text", 2)
	if res[0].Doc != 0 {
		t.Fatalf("weight 0 should be pure similarity: %v", res)
	}
}

func TestEngineWithPriorValidation(t *testing.T) {
	e := buildEngine(t, Cosine, "alpha beta", "gamma delta")
	idx := e.Index()
	an := e.Analyzer()
	if _, err := NewEngineWithPrior(idx, an, Cosine, []float64{1}, 0.5); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := NewEngineWithPrior(idx, an, Cosine, []float64{1, 1}, 2); err == nil {
		t.Error("weight > 1 must error")
	}
	if _, err := NewEngineWithPrior(idx, an, Cosine, []float64{-1, 1}, 0.5); err == nil {
		t.Error("negative prior must error")
	}
	if _, err := NewEngineWithPrior(idx, an, Cosine, []float64{0, 0}, 0.5); err == nil {
		t.Error("all-zero prior must error")
	}
}

func TestEngineWithPageRankPrior(t *testing.T) {
	// End-to-end with the linkrank substrate: a link-popular relevant
	// doc outranks an equally-similar unpopular one.
	spec := corpus.GenSpec{Seed: 19, NumDocs: 40, NumTopics: 4, DocLenMin: 20, DocLenMax: 40}
	c, _, err := corpus.Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := index.Build(c)
	topics := make([][]float64, c.NumDocs())
	for d := range topics {
		topics[d] = c.Docs[d].TrueTopics
	}
	g, err := linkrank.SyntheticGraph(topics, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := linkrank.PageRank(g, 0.85, 100, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	an := textproc.NewAnalyzer()
	e, err := NewEngineWithPrior(idx, an, Cosine, pr, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res := e.SearchTerms(an.Analyze(c.Docs[0].Text)[:5], 10)
	if len(res) == 0 {
		t.Fatal("no results with prior-modulated engine")
	}
	for _, r := range res {
		if r.Score < 0 {
			t.Fatalf("negative combined score %v", r.Score)
		}
	}
}
