package vsm

import (
	"context"
	"strings"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/telemetry"
	"toppriv/internal/textproc"
)

// telemetryEngine builds an instrumented engine over a synthetic
// corpus large enough that the pruned modes actually seek and decode
// blocks.
func telemetryEngine(t *testing.T) (*Engine, *telemetry.Registry, *telemetry.TraceRing, []string) {
	t.Helper()
	spec := corpus.GenSpec{Seed: 311, NumDocs: 400, NumTopics: 4, DocLenMin: 30, DocLenMax: 80}
	c, gt, err := corpus.Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	an := textproc.NewAnalyzer()
	eng, err := NewEngine(idx, an, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ring := telemetry.NewTraceRing(8)
	eng.EnableMetrics(reg, ring)
	var terms []string
	for _, w := range gt.TopicWords[0] {
		if t, ok := an.AnalyzeTerm(w); ok {
			terms = append(terms, t)
			if len(terms) == 5 {
				break
			}
		}
	}
	return eng, reg, ring, terms
}

// TestExecStatsIteratorCounters pins the satellite surface: SeekProbes
// and BlocksDecoded flow from the iterators into ExecStats for every
// execution mode, and Add folds them like the other counters.
func TestExecStatsIteratorCounters(t *testing.T) {
	eng, _, _, terms := telemetryEngine(t)
	for _, mode := range []ExecMode{ExecExhaustive, ExecMaxScore, ExecBlockMax} {
		var stats ExecStats
		eng.SearchTermsExec(terms, 10, nil, mode, &stats)
		if stats.BlocksDecoded == 0 {
			t.Errorf("%v: BlocksDecoded = 0, want > 0", mode)
		}
		if mode != ExecExhaustive && stats.SeekProbes == 0 {
			t.Errorf("%v: SeekProbes = 0, want > 0 for a seeking mode", mode)
		}
		var sum ExecStats
		sum.Add(stats)
		sum.Add(stats)
		if sum.SeekProbes != 2*stats.SeekProbes || sum.BlocksDecoded != 2*stats.BlocksDecoded {
			t.Errorf("%v: Add dropped iterator counters: %+v vs %+v", mode, sum, stats)
		}
	}
}

// TestEngineMetricsObserve checks the engine-side wiring end to end:
// queries land in the latency and phase histograms under the
// effective-mode label, the work counters advance, and the trace ring
// retains a structurally-sound trace.
func TestEngineMetricsObserve(t *testing.T) {
	eng, reg, ring, terms := telemetryEngine(t)
	const n = 4
	ctx := context.Background()
	for i := 0; i < n; i++ {
		if _, err := eng.SearchRequest(ctx, Request{Terms: terms, K: 5}); err != nil {
			t.Fatal(err)
		}
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := telemetry.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	var latCount, queries float64
	for _, f := range fams {
		switch f.Name {
		case MetricQuerySeconds:
			for _, s := range f.Samples {
				if strings.HasSuffix(s.Name, "_count") {
					latCount += s.Value
				}
			}
		case MetricQueriesTotal:
			for _, s := range f.Samples {
				queries += s.Value
			}
		}
	}
	if latCount != n || queries != n {
		t.Fatalf("histogram count = %v, queries_total = %v, want %d each", latCount, queries, n)
	}

	if ring.Len() != n {
		t.Fatalf("trace ring retains %d, want %d", ring.Len(), n)
	}
	traces := ring.Snapshot()
	last := traces[len(traces)-1]
	if last.Terms != len(terms) || last.K != 5 || last.Scorer != "cosine" {
		t.Fatalf("trace = %+v, want terms=%d k=5 scorer=cosine", last, len(terms))
	}
	if last.Mode == "" || last.Mode == "auto" {
		t.Fatalf("trace mode = %q, want the effective (resolved) mode", last.Mode)
	}
	if last.TotalNS <= 0 || last.TraverseNS <= 0 {
		t.Fatalf("trace timings not populated: %+v", last)
	}
	if last.DocsScored == 0 || last.BlocksDecoded == 0 {
		t.Fatalf("trace work counters not populated: %+v", last)
	}
}

// TestTraceWithoutMetrics guards the decoupling: an explicit Trace
// request must produce an inline trace even on an engine that never
// called EnableMetrics — tracing works without a scrape pipeline —
// and an unrequested trace must stay absent.
func TestTraceWithoutMetrics(t *testing.T) {
	spec := corpus.GenSpec{Seed: 313, NumDocs: 80, NumTopics: 3, DocLenMin: 20, DocLenMax: 40}
	c, gt, err := corpus.Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(idx, textproc.NewAnalyzer(), Cosine)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eng.SearchRequest(context.Background(), Request{Query: strings.Join(gt.TopicWords[0][:3], " "), K: 5, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil || resp.Trace.TotalNS <= 0 {
		t.Fatalf("inline trace without metrics = %+v, want populated", resp.Trace)
	}
	resp, err = eng.SearchRequest(context.Background(), Request{Query: strings.Join(gt.TopicWords[0][:3], " "), K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace != nil {
		t.Fatal("unrequested trace present")
	}
}
