// Package search provides the enterprise deployment surface of Fig. 1:
// an HTTP search server hosting the unmodified similarity engine, and
// the trusted client module that mixes ghost queries into each user
// query, submits the cycle, and filters the ghost results.
//
// The server also keeps the query log — the exact artifact the paper's
// curious adversary analyzes after the fact — so experiments and tests
// can attack precisely what a real search engine would retain.
//
// The server is backend-agnostic: it serves any vsm.Searcher, whether
// the immutable single-index engine or the live segment.Store. When the
// backend implements LiveIndex, the mutation endpoints (POST /index,
// DELETE /doc/{id}) come alive too.
package search

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/telemetry"
	"toppriv/internal/vsm"
)

// DefaultQueryLogCap bounds the in-memory query log. A long-running
// server keeps only the most recent entries; 100k entries is far more
// than any adversary experiment consumes while keeping a steady-state
// searchd's footprint flat.
const DefaultQueryLogCap = 100_000

// LiveIndex is the mutation surface a live backend (segment.Store)
// offers; the static engine does not implement it, and the server
// rejects mutations accordingly.
type LiveIndex interface {
	Add(docs ...corpus.Document) ([]corpus.DocID, error)
	Delete(id corpus.DocID) error
	Doc(id corpus.DocID) (corpus.Document, bool)
}

// ModeSearcher is the optional per-request execution-mode surface;
// both *vsm.Engine and *segment.Store implement it. Backends without
// it reject requests that name an explicit exec mode.
type ModeSearcher interface {
	SearchMode(query string, k int, mode vsm.ExecMode) []vsm.Result
}

// statsProvider is the optional stats surface behind GET /stats; both
// *vsm.Engine and *segment.Store implement it.
type statsProvider interface {
	ComputeStats() index.Stats
}

// DefaultMaxK caps the per-query result count. A client asking for
// more than the cap gets the cap — a full-collection heap per request
// is a denial-of-service lever, not a search.
const DefaultMaxK = 1000

// DefaultMaxBatch caps the member count of one POST /search/batch
// request. An obfuscation cycle is υ queries — typically well under
// twenty — so the default leaves generous headroom without letting a
// single request monopolize the engine.
const DefaultMaxBatch = 64

// SearchRequest is the POST /search payload.
type SearchRequest struct {
	// Query is the raw query text (a bag of words; order is ignored).
	Query string `json:"query"`
	// K is the number of results wanted; the server caps it at its
	// configured maximum (default 1000). Zero means 10; negative is
	// rejected.
	K int `json:"k,omitempty"`
	// Exec optionally overrides the backend's query-execution strategy
	// for this request: "auto", "maxscore", "blockmax", or
	// "exhaustive" (empty means the backend default). Results are
	// identical either way; the knob exists for benchmarking and
	// regression triage.
	Exec string `json:"exec,omitempty"`
	// Trace, when true, asks for a per-phase timing breakdown of this
	// query's execution inline in the response. The trace carries phase
	// durations and work counters only — never query content — so
	// opting in does not widen what the server retains about the query.
	Trace bool `json:"trace,omitempty"`
}

// SearchHit is one result row.
type SearchHit struct {
	Doc   corpus.DocID `json:"doc"`
	Score float64      `json:"score"`
	Title string       `json:"title,omitempty"`
}

// SearchResponse is the POST /search reply (and one member of the
// POST /search/batch reply).
type SearchResponse struct {
	Hits []SearchHit `json:"hits"`
	// Stats carries the engine's execution counters (documents scored,
	// pruned, filtered; block skips) when the backend exposes them —
	// the first time they cross the HTTP layer. Nil for legacy
	// backends that only implement vsm.Searcher.
	Stats *vsm.ExecStats `json:"stats,omitempty"`
	// Trace is the per-phase timing breakdown, present when the request
	// set "trace": true and the backend supports tracing. Batch members
	// served by a shared traversal all carry the same cycle-level trace.
	Trace *telemetry.PhaseTrace `json:"trace,omitempty"`
	// Degraded reports that a distributed backend assembled the hits
	// without every shard (one was down or missed its deadline), so the
	// ranking covers the surviving shards only. Single-node servers
	// never set it.
	Degraded bool `json:"degraded,omitempty"`
	// Shards is the per-shard outcome of a scatter-gather execution,
	// present only from a router backend.
	Shards []vsm.ShardStatus `json:"shards,omitempty"`
}

// BatchSearchRequest is the POST /search/batch payload: one
// obfuscation cycle's queries, submitted together as the paper's
// system model does (§III, Fig. 1). Each member is validated exactly
// like a single /search request; the server logs each member as a
// separate query-log entry, so the adversary's view of the log is
// identical to query-by-query submission.
type BatchSearchRequest struct {
	Queries []SearchRequest `json:"queries"`
}

// BatchSearchResponse is the POST /search/batch reply; Responses align
// with the request's Queries by index.
type BatchSearchResponse struct {
	Responses []SearchResponse `json:"responses"`
}

// IndexRequest is the POST /index payload: documents to ingest.
type IndexRequest struct {
	Docs []corpus.Document `json:"docs"`
}

// IndexResponse is the POST /index reply: the assigned document IDs.
type IndexResponse struct {
	IDs []corpus.DocID `json:"ids"`
}

// LoggedQuery is one query-log entry — what the adversary sees.
type LoggedQuery struct {
	Seq   int    `json:"seq"`
	Query string `json:"query"`
}

// Server hosts the search engine over HTTP. It requires no knowledge of
// TopPriv: ghost queries are indistinguishable requests.
type Server struct {
	engine vsm.Searcher
	// reqs is the structured Request/Response surface (non-nil when
	// the backend implements vsm.RequestSearcher — both *vsm.Engine
	// and *segment.Store do); it powers execution stats, context
	// cancellation and POST /search/batch. Legacy backends fall back
	// to the Searcher methods and get neither.
	reqs   vsm.RequestSearcher
	modal  ModeSearcher  // non-nil when engine supports per-request exec modes
	live   LiveIndex     // non-nil when engine supports mutation
	titles titleProvider // non-nil when engine resolves titles directly
	docs   []corpus.Document
	mux    *http.ServeMux

	// adminToken, when non-empty, gates the mutation endpoints behind
	// an Authorization: Bearer header. Set before serving.
	adminToken string
	// maxK caps the per-request result count. Set before serving.
	maxK int
	// maxBatch caps the member count of one batch request. Set before
	// serving.
	maxBatch int

	// Telemetry: the server owns the process's metric registry and
	// phase-trace ring, and hands them to the backend when it
	// implements MetricsBackend. See telemetry.go.
	reg          *telemetry.Registry
	ring         *telemetry.TraceRing
	httpReqs     *telemetry.CounterVec
	httpErrs     *telemetry.CounterVec
	httpInflight *telemetry.GaugeVec
	logEvicted   atomic.Uint64

	mu sync.Mutex
	// The query log is a ring: seq numbers are absolute and monotonic,
	// but only the most recent logCap entries are retained.
	log      []LoggedQuery
	logStart int // index of the oldest retained entry
	seq      int
	logCap   int
}

// Request body ceilings: queries are a handful of words; index batches
// may carry whole documents but must not be able to exhaust memory.
const (
	maxSearchBody = 1 << 20 // 1 MiB
	// maxBatchBody bounds a whole batch of queries — generous for
	// DefaultMaxBatch short queries, nowhere near document ingestion.
	maxBatchBody = 4 << 20  // 4 MiB
	maxIndexBody = 32 << 20 // 32 MiB
)

// NewServer builds the handler over any Searcher backend. docs may be
// nil when titles/content are not needed (a live backend resolves
// documents through its own LiveIndex.Doc instead).
func NewServer(engine vsm.Searcher, docs []corpus.Document) (*Server, error) {
	if engine == nil {
		return nil, fmt.Errorf("search: nil engine")
	}
	s := &Server{engine: engine, docs: docs, mux: http.NewServeMux(), logCap: DefaultQueryLogCap, maxK: DefaultMaxK, maxBatch: DefaultMaxBatch}
	if live, ok := engine.(LiveIndex); ok {
		s.live = live
	}
	if modal, ok := engine.(ModeSearcher); ok {
		s.modal = modal
	}
	if reqs, ok := engine.(vsm.RequestSearcher); ok {
		s.reqs = reqs
	}
	if titles, ok := engine.(titleProvider); ok {
		s.titles = titles
	}
	s.initTelemetry()
	s.mux.Handle("/search", s.instrument("/search", s.handleSearch))
	s.mux.Handle("/search/batch", s.instrument("/search/batch", s.handleSearchBatch))
	s.mux.Handle("/index", s.instrument("/index", s.handleIndex))
	s.mux.Handle("/doc/", s.instrument("/doc", s.handleDoc))
	s.mux.Handle("/stats", s.instrument("/stats", s.handleStats))
	s.mux.Handle("/metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux.Handle("/debug/traces", s.instrument("/debug/traces", s.handleTraces))
	return s, nil
}

// Handle mounts an additional instrumented route on the server's mux —
// the seam a cluster shard or router uses to expose its wire endpoints
// (/cluster/...) alongside the standard search surface, inheriting the
// same request/error/inflight accounting. Mount before serving.
func (s *Server) Handle(pattern string, h http.Handler) {
	route := strings.TrimRight(pattern, "/")
	s.mux.Handle(pattern, s.instrument(route, h.ServeHTTP))
}

// SetQueryLogCap bounds the query log to the most recent n entries
// (n <= 0 restores the default). Existing entries beyond the new cap
// are discarded oldest-first.
func (s *Server) SetQueryLogCap(n int) {
	if n <= 0 {
		n = DefaultQueryLogCap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snapshotLogLocked()
	if len(cur) > n {
		s.logEvicted.Add(uint64(len(cur) - n))
		cur = cur[len(cur)-n:]
	}
	s.logCap = n
	s.log = cur
	s.logStart = 0
}

// SetMaxK caps the per-request result count (n <= 0 restores the
// default). Requests asking for more get the cap, not an error —
// mirroring the long-standing clamp — but a negative K in the request
// body is rejected outright. The cap applies to every query the server
// accepts, batch members included. Set before serving.
func (s *Server) SetMaxK(n int) {
	if n <= 0 {
		n = DefaultMaxK
	}
	s.maxK = n
}

// SetMaxBatch caps the member count of one POST /search/batch request
// (n <= 0 restores the default). Oversized batches are rejected with
// 400, not truncated — silently dropping cycle members would change
// what the query log records. Set before serving.
func (s *Server) SetMaxBatch(n int) {
	if n <= 0 {
		n = DefaultMaxBatch
	}
	s.maxBatch = n
}

// SetAdminToken requires `Authorization: Bearer token` on the mutation
// endpoints (POST /index, DELETE /doc/{id}). Empty leaves them open —
// fine for experiments, not for a deployment whose search users are
// not all index administrators. Set before serving.
func (s *Server) SetAdminToken(token string) { s.adminToken = token }

// Live reports whether the backend accepts mutations.
func (s *Server) Live() bool { return s.live != nil }

// authorizeAdmin enforces the admin token, writing the error response
// itself when the request is rejected. Comparison is constant-time so
// the token cannot be recovered through a timing side-channel.
func (s *Server) authorizeAdmin(w http.ResponseWriter, r *http.Request) bool {
	if s.adminToken == "" {
		return true
	}
	got := r.Header.Get("Authorization")
	want := "Bearer " + s.adminToken
	if subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
		http.Error(w, "admin token required", http.StatusUnauthorized)
		return false
	}
	return true
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// decodeQuery is the one place a SearchRequest becomes an executable
// vsm.Request: empty-query rejection, the negative-k rejection and
// SetMaxK clamp, and exec-mode parsing all live here, so the single
// and batch endpoints cannot drift apart (the clamp used to be
// single-endpoint only, which a batch endpoint would have bypassed).
func (s *Server) decodeQuery(req *SearchRequest) (vsm.Request, error) {
	if strings.TrimSpace(req.Query) == "" {
		return vsm.Request{}, errors.New("empty query")
	}
	if req.K < 0 {
		return vsm.Request{}, fmt.Errorf("k = %d: must be positive", req.K)
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	if k > s.maxK {
		k = s.maxK
	}
	mode, err := vsm.ParseExecMode(req.Exec)
	if err != nil {
		return vsm.Request{}, err
	}
	if req.Exec != "" && s.reqs == nil && s.modal == nil {
		return vsm.Request{}, errors.New("backend does not support exec mode overrides")
	}
	return vsm.Request{Query: req.Query, K: k, Mode: mode, Trace: req.Trace && s.reqs != nil}, nil
}

// execute runs one decoded request on the best surface the backend
// offers: the structured RequestSearcher (stats, cancellation) or the
// legacy Searcher methods.
func (s *Server) execute(ctx context.Context, req *SearchRequest, vreq vsm.Request) (SearchResponse, error) {
	var results []vsm.Result
	switch {
	case s.reqs != nil:
		vresp, err := s.reqs.SearchRequest(ctx, vreq)
		if err != nil {
			return SearchResponse{}, err
		}
		return s.toSearchResponse(&vresp), nil
	case req.Exec != "":
		results = s.modal.SearchMode(vreq.Query, vreq.K, vreq.Mode)
	default:
		results = s.engine.Search(vreq.Query, vreq.K)
	}
	return s.toSearchResponse(&vsm.Response{Hits: results}), nil
}

// toSearchResponse shapes an engine response into the wire form,
// resolving titles — the one conversion both the single and batch
// endpoints use. Degradation state (a routed backend's partial-failure
// signal) passes through untouched.
func (s *Server) toSearchResponse(vresp *vsm.Response) SearchResponse {
	results := vresp.Hits
	resp := SearchResponse{
		Hits:     make([]SearchHit, len(results)),
		Trace:    vresp.Trace,
		Degraded: vresp.Degraded,
		Shards:   vresp.Shards,
	}
	if s.reqs != nil {
		stats := vresp.Stats
		resp.Stats = &stats
	}
	for i, res := range results {
		hit := SearchHit{Doc: res.Doc, Score: res.Score}
		if title, ok := s.title(res.Doc); ok {
			hit.Title = title
		}
		resp.Hits[i] = hit
	}
	return resp
}

// writeExecError maps an execution error onto an HTTP status: client
// disconnects and deadline overruns are not server faults.
func writeExecError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req SearchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSearchBody)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	vreq, err := s.decodeQuery(&req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	s.logQuery(req.Query)

	resp, err := s.execute(r.Context(), &req, vreq)
	if err != nil {
		writeExecError(w, err)
		return
	}
	writeJSON(w, resp)
}

// handleSearchBatch serves one whole cycle per round-trip. Every
// member passes the same decoding and validation as a single /search
// request, and every member is logged as its own query-log entry
// before execution — the retained log, the adversary's artifact, is
// byte-identical to query-by-query submission.
func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var batch BatchSearchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody)).Decode(&batch); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(batch.Queries) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	if len(batch.Queries) > s.maxBatch {
		http.Error(w, fmt.Sprintf("batch of %d queries exceeds the maximum of %d", len(batch.Queries), s.maxBatch), http.StatusBadRequest)
		return
	}
	vreqs := make([]vsm.Request, len(batch.Queries))
	for i := range batch.Queries {
		vreq, err := s.decodeQuery(&batch.Queries[i])
		if err != nil {
			http.Error(w, fmt.Sprintf("batch member %d: %v", i, err), http.StatusBadRequest)
			return
		}
		vreqs[i] = vreq
	}
	// One log entry per cycle member, in submission order, exactly as
	// query-by-query submission would record them.
	for i := range batch.Queries {
		s.logQuery(batch.Queries[i].Query)
	}

	resp := BatchSearchResponse{Responses: make([]SearchResponse, len(batch.Queries))}
	if s.reqs != nil {
		vresps, err := s.reqs.SearchBatch(r.Context(), vreqs)
		if err != nil {
			writeExecError(w, err)
			return
		}
		for i := range vresps {
			resp.Responses[i] = s.toSearchResponse(&vresps[i])
		}
		writeJSON(w, resp)
		return
	}
	// Legacy backend: member-at-a-time, same results, no stats.
	for i := range batch.Queries {
		sr, err := s.execute(r.Context(), &batch.Queries[i], vreqs[i])
		if err != nil {
			writeExecError(w, err)
			return
		}
		resp.Responses[i] = sr
	}
	writeJSON(w, resp)
}

// titleProvider is the optional title-resolution surface for backends
// that know display titles without holding full documents — a router
// resolves titles from its ingest-time cache rather than a local store.
// Checked before LiveIndex.Doc, which would force a full document
// lookup per hit.
type titleProvider interface {
	Title(id corpus.DocID) (string, bool)
}

func (s *Server) title(id corpus.DocID) (string, bool) {
	if s.titles != nil {
		return s.titles.Title(id)
	}
	if s.live != nil {
		if doc, ok := s.live.Doc(id); ok {
			return doc.Title, true
		}
		return "", false
	}
	if int(id) < len(s.docs) {
		return s.docs[id].Title, true
	}
	return "", false
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.live == nil {
		http.Error(w, "immutable index: rebuild to change the corpus", http.StatusMethodNotAllowed)
		return
	}
	if !s.authorizeAdmin(w, r) {
		return
	}
	var req IndexRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIndexBody)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Docs) == 0 {
		http.Error(w, "no documents", http.StatusBadRequest)
		return
	}
	ids, err := s.live.Add(req.Docs...)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, IndexResponse{IDs: ids})
}

func (s *Server) handleDoc(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/doc/")
	// Parse into the DocID's own width so oversized IDs 404 instead of
	// truncating onto a low document ID.
	id64, err := strconv.ParseInt(idStr, 10, 32)
	if err != nil || id64 < 0 {
		http.Error(w, "no such document", http.StatusNotFound)
		return
	}
	id := int(id64)
	switch r.Method {
	case http.MethodGet:
		if s.live != nil {
			doc, ok := s.live.Doc(corpus.DocID(id))
			if !ok {
				http.Error(w, "no such document", http.StatusNotFound)
				return
			}
			writeJSON(w, doc)
			return
		}
		if id >= len(s.docs) {
			http.Error(w, "no such document", http.StatusNotFound)
			return
		}
		writeJSON(w, s.docs[id])
	case http.MethodDelete:
		if s.live == nil {
			http.Error(w, "immutable index: rebuild to change the corpus", http.StatusMethodNotAllowed)
			return
		}
		if !s.authorizeAdmin(w, r) {
			return
		}
		if err := s.live.Delete(corpus.DocID(id)); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "GET or DELETE required", http.StatusMethodNotAllowed)
	}
}

// QueryLogStats describes the query-log ring on GET /stats. Seq
// numbers are absolute: HeadSeq is the oldest retained entry's
// sequence and TailSeq the next to be assigned, so TailSeq - HeadSeq
// == Retained and HeadSeq == Evicted. An adversary-side consumer can
// tell from a HeadSeq jump exactly how much history rolled off
// between two scrapes.
type QueryLogStats struct {
	Retained int    `json:"retained"`
	Evicted  uint64 `json:"evicted"`
	HeadSeq  int    `json:"head_seq"`
	TailSeq  int    `json:"tail_seq"`
}

// StatsResponse is the GET /stats reply: the index shape stats the
// endpoint has always served, plus the query-log ring's state and —
// when the backend runs a block cache — its residency counters. The
// extensions are additive — clients decoding into index.Stats ignore
// the new keys, and resident_bytes/resident_bytes_per_doc live inside
// index.Stats itself.
type StatsResponse struct {
	index.Stats
	QueryLog QueryLogStats     `json:"querylog"`
	Cache    *index.CacheStats `json:"cache,omitempty"`
	// Cluster aggregates per-shard health when the backend is a
	// scatter-gather router; nil on single-node servers.
	Cluster *ClusterHealth `json:"cluster,omitempty"`
}

// cacheStatsProvider is implemented by backends with a decoded-block
// cache (segment.Store); ok reports whether one is configured.
type cacheStatsProvider interface {
	CacheStats() (index.CacheStats, bool)
}

// ShardHealth is one shard's aggregate health as the router sees it,
// surfaced through GET /stats so topprivctl -stats shows cluster state.
type ShardHealth struct {
	// Shard is the shard's base URL.
	Shard string `json:"shard"`
	// Up reports whether the shard's last exchange succeeded.
	Up bool `json:"up"`
	// Docs is the shard's live document count at its last stats report.
	Docs int `json:"docs"`
	// LastError is the most recent failure, empty while healthy.
	LastError string `json:"last_error,omitempty"`
	// Requests and Errors count this shard's exchanges since router start.
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	// P99Millis is the 99th-percentile round-trip latency over the
	// router's recent-sample window, in milliseconds (0 until sampled).
	P99Millis float64 `json:"p99_ms"`
	// LastSeenUnix is the Unix time of the shard's most recent
	// successful exchange (0 = never reached by this router process).
	LastSeenUnix int64 `json:"last_seen_unix,omitempty"`
	// Restarts counts shard process restarts this router has observed
	// (the shard's instance nonce changing between stats reports).
	Restarts uint64 `json:"restarts"`
}

// ClusterHealth aggregates the router's view of its shards.
type ClusterHealth struct {
	Shards []ShardHealth `json:"shards"`
	// Degraded counts queries answered without every shard.
	Degraded uint64 `json:"degraded_queries"`
	// Recoveries counts completed shard catch-ups: a restarted or
	// rejoined shard brought back in sync with the placement journal.
	Recoveries uint64 `json:"recoveries,omitempty"`
	// JournalBytes is the placement journal's current WAL size (0 when
	// journaling is disabled).
	JournalBytes int64 `json:"journal_bytes,omitempty"`
	// ReplayedEntries counts journal records replayed at startup plus
	// records re-driven to shards during catch-up.
	ReplayedEntries uint64 `json:"replayed_entries,omitempty"`
	// PendingRecords is the number of journaled mutations not yet
	// confirmed durable by every target shard.
	PendingRecords int `json:"pending_records,omitempty"`
	// Journaled reports whether a placement journal backs this router.
	Journaled bool `json:"journaled,omitempty"`
}

// ClusterHealthProvider is implemented by a routing backend that can
// report per-shard health (the cluster router); single-node backends
// do not implement it.
type ClusterHealthProvider interface {
	ClusterHealth() ClusterHealth
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	sp, ok := s.engine.(statsProvider)
	if !ok {
		http.Error(w, "stats unavailable for this backend", http.StatusNotFound)
		return
	}
	resp := StatsResponse{Stats: sp.ComputeStats(), QueryLog: s.queryLogStats()}
	if cp, ok := s.engine.(cacheStatsProvider); ok {
		if cs, ok := cp.CacheStats(); ok {
			resp.Cache = &cs
		}
	}
	if hp, ok := s.engine.(ClusterHealthProvider); ok {
		ch := hp.ClusterHealth()
		resp.Cluster = &ch
	}
	writeJSON(w, resp)
}

func (s *Server) queryLogStats() QueryLogStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return QueryLogStats{
		Retained: len(s.log),
		Evicted:  s.logEvicted.Load(),
		HeadSeq:  s.seq - len(s.log),
		TailSeq:  s.seq,
	}
}

// logQuery appends to the ring, evicting the oldest entry at capacity.
func (s *Server) logQuery(q string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry := LoggedQuery{Seq: s.seq, Query: q}
	s.seq++
	if len(s.log) < s.logCap {
		s.log = append(s.log, entry)
		return
	}
	s.log[s.logStart] = entry
	s.logStart = (s.logStart + 1) % len(s.log)
	s.logEvicted.Add(1)
}

// QueryLog returns a copy of the retained query log, oldest first — the
// artifact the threat model assumes the adversary can analyze. Entries
// beyond the configured capacity have been evicted oldest-first; Seq
// stays absolute, so gaps at the front reveal how much history rolled
// off.
func (s *Server) QueryLog() []LoggedQuery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLogLocked()
}

func (s *Server) snapshotLogLocked() []LoggedQuery {
	out := make([]LoggedQuery, 0, len(s.log))
	out = append(out, s.log[s.logStart:]...)
	out = append(out, s.log[:s.logStart]...)
	return out
}

// ResetLog clears the query log (test convenience). Seq restarts at 0,
// matching the historical semantics of a fresh server.
func (s *Server) ResetLog() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = nil
	s.logStart = 0
	s.seq = 0
	s.logEvicted.Store(0)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
