// Package search provides the enterprise deployment surface of Fig. 1:
// an HTTP search server hosting the unmodified similarity engine, and
// the trusted client module that mixes ghost queries into each user
// query, submits the cycle, and filters the ghost results.
//
// The server also keeps the query log — the exact artifact the paper's
// curious adversary analyzes after the fact — so experiments and tests
// can attack precisely what a real search engine would retain.
package search

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"toppriv/internal/corpus"
	"toppriv/internal/vsm"
)

// SearchRequest is the POST /search payload.
type SearchRequest struct {
	// Query is the raw query text (a bag of words; order is ignored).
	Query string `json:"query"`
	// K is the number of results wanted; the server clamps it to
	// [1, 1000]. Zero means 10.
	K int `json:"k,omitempty"`
}

// SearchHit is one result row.
type SearchHit struct {
	Doc   corpus.DocID `json:"doc"`
	Score float64      `json:"score"`
	Title string       `json:"title,omitempty"`
}

// SearchResponse is the POST /search reply.
type SearchResponse struct {
	Hits []SearchHit `json:"hits"`
}

// LoggedQuery is one query-log entry — what the adversary sees.
type LoggedQuery struct {
	Seq   int    `json:"seq"`
	Query string `json:"query"`
}

// Server hosts the search engine over HTTP. It requires no knowledge of
// TopPriv: ghost queries are indistinguishable requests.
type Server struct {
	engine *vsm.Engine
	docs   []corpus.Document
	mux    *http.ServeMux

	mu  sync.Mutex
	log []LoggedQuery
}

// NewServer builds the handler. docs may be nil when titles/content are
// not needed.
func NewServer(engine *vsm.Engine, docs []corpus.Document) (*Server, error) {
	if engine == nil {
		return nil, fmt.Errorf("search: nil engine")
	}
	s := &Server{engine: engine, docs: docs, mux: http.NewServeMux()}
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/doc/", s.handleDoc)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		http.Error(w, "empty query", http.StatusBadRequest)
		return
	}
	k := req.K
	if k <= 0 {
		k = 10
	}
	if k > 1000 {
		k = 1000
	}

	s.mu.Lock()
	s.log = append(s.log, LoggedQuery{Seq: len(s.log), Query: req.Query})
	s.mu.Unlock()

	results := s.engine.Search(req.Query, k)
	resp := SearchResponse{Hits: make([]SearchHit, len(results))}
	for i, res := range results {
		hit := SearchHit{Doc: res.Doc, Score: res.Score}
		if int(res.Doc) < len(s.docs) {
			hit.Title = s.docs[res.Doc].Title
		}
		resp.Hits[i] = hit
	}
	writeJSON(w, resp)
}

func (s *Server) handleDoc(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/doc/")
	id, err := strconv.Atoi(idStr)
	if err != nil || id < 0 || id >= len(s.docs) {
		http.Error(w, "no such document", http.StatusNotFound)
		return
	}
	writeJSON(w, s.docs[id])
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.engine.Index().ComputeStats())
}

// QueryLog returns a copy of the server-side query log — the artifact
// the threat model assumes the adversary can analyze.
func (s *Server) QueryLog() []LoggedQuery {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]LoggedQuery, len(s.log))
	copy(out, s.log)
	return out
}

// ResetLog clears the query log (test convenience).
func (s *Server) ResetLog() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = nil
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
