package search

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/segment"
)

func liveFixture(t *testing.T) (*Server, *httptest.Server, *segment.Store) {
	t.Helper()
	st, err := segment.Open(segment.Config{SealThreshold: 4, DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		st.Close()
	})
	return srv, ts, st
}

func TestLiveIndexEndpoints(t *testing.T) {
	srv, ts, st := liveFixture(t)
	if !srv.Live() {
		t.Fatal("segment-backed server should report Live")
	}

	body, _ := json.Marshal(IndexRequest{Docs: []corpus.Document{
		{Title: "one", Text: "reactor cooling systems for submarines"},
		{Title: "two", Text: "helicopter rotor maintenance manual"},
	}})
	resp, err := http.Post(ts.URL+"/index", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ir IndexResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ir.IDs) != 2 {
		t.Fatalf("got IDs %v", ir.IDs)
	}
	if st.NumDocs() != 2 {
		t.Fatalf("store has %d docs", st.NumDocs())
	}

	// Search sees the new documents immediately (memtable path).
	sbody, _ := json.Marshal(SearchRequest{Query: "rotor maintenance", K: 5})
	resp, err = http.Post(ts.URL+"/search", "application/json", bytes.NewReader(sbody))
	if err != nil {
		t.Fatal(err)
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sr.Hits) != 1 || sr.Hits[0].Doc != ir.IDs[1] || sr.Hits[0].Title != "two" {
		t.Fatalf("hits = %+v", sr.Hits)
	}

	// GET /doc/{id} resolves through the live store.
	resp, err = http.Get(fmt.Sprintf("%s/doc/%d", ts.URL, ir.IDs[0]))
	if err != nil {
		t.Fatal(err)
	}
	var doc corpus.Document
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.Title != "one" {
		t.Fatalf("doc = %+v", doc)
	}

	// DELETE /doc/{id} tombstones; the doc disappears from search and
	// lookup, and a second delete 404s.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/doc/%d", ts.URL, ir.IDs[1]), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/search", "application/json", bytes.NewReader(sbody))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sr.Hits) != 0 {
		t.Fatalf("deleted doc still retrieved: %+v", sr.Hits)
	}

	// /stats aggregates over the store.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["NumDocs"].(float64) != 1 {
		t.Fatalf("stats = %v", stats)
	}
}

func TestMutationRejectedOnStaticBackend(t *testing.T) {
	f := getFixture(t)
	if f.server.Live() {
		t.Fatal("static fixture should not be live")
	}
	body, _ := json.Marshal(IndexRequest{Docs: []corpus.Document{{Text: "x"}}})
	resp, err := http.Post(f.ts.URL+"/index", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /index on static backend: %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, f.ts.URL+"/doc/0", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /doc on static backend: %d", resp.StatusCode)
	}
}

func TestClientAdminMethods(t *testing.T) {
	_, ts, st := liveFixture(t)
	c := NewAdminClient(ts.URL, nil)
	ids, err := c.AddDocuments([]corpus.Document{
		{Title: "a", Text: "sonar arrays aboard the fleet"},
		{Title: "b", Text: "propulsion reactor fuel rods"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || st.NumDocs() != 2 {
		t.Fatalf("ids %v, store %d docs", ids, st.NumDocs())
	}
	if err := c.DeleteDocument(ids[0]); err != nil {
		t.Fatal(err)
	}
	if st.NumDocs() != 1 {
		t.Fatalf("store %d docs after delete", st.NumDocs())
	}
	if err := c.DeleteDocument(ids[0]); err == nil {
		t.Fatal("double delete should error")
	}
}

func TestQueryLogRing(t *testing.T) {
	f := getFixture(t)
	f.server.ResetLog()
	f.server.SetQueryLogCap(5)
	defer f.server.SetQueryLogCap(0) // restore default for other tests

	post := func(q string) {
		t.Helper()
		body, _ := json.Marshal(SearchRequest{Query: q})
		resp, err := http.Post(f.ts.URL+"/search", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	for i := 0; i < 8; i++ {
		post(fmt.Sprintf("query number %d", i))
	}
	log := f.server.QueryLog()
	if len(log) != 5 {
		t.Fatalf("retained %d entries, want 5", len(log))
	}
	for i, e := range log {
		wantSeq := 3 + i // 8 queries, cap 5 → oldest retained is seq 3
		if e.Seq != wantSeq {
			t.Fatalf("entry %d: seq %d, want %d", i, e.Seq, wantSeq)
		}
		if want := fmt.Sprintf("query number %d", wantSeq); e.Query != want {
			t.Fatalf("entry %d: query %q, want %q", i, e.Query, want)
		}
	}

	// Shrinking the cap drops oldest entries; growing keeps them.
	f.server.SetQueryLogCap(2)
	log = f.server.QueryLog()
	if len(log) != 2 || log[0].Seq != 6 || log[1].Seq != 7 {
		t.Fatalf("after shrink: %+v", log)
	}
	f.server.SetQueryLogCap(10)
	post("after regrow")
	log = f.server.QueryLog()
	if len(log) != 3 || log[2].Seq != 8 || log[2].Query != "after regrow" {
		t.Fatalf("after regrow: %+v", log)
	}
}

func TestAdminTokenGatesMutations(t *testing.T) {
	srv, ts, _ := liveFixture(t)
	srv.SetAdminToken("sesame")

	c := NewAdminClient(ts.URL, nil)
	if _, err := c.AddDocuments([]corpus.Document{{Text: "x"}}); err == nil {
		t.Fatal("add without token should 401")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/doc/0", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("delete without token: %d", resp.StatusCode)
	}

	c.AdminToken = "sesame"
	ids, err := c.AddDocuments([]corpus.Document{{Title: "ok", Text: "tokenized access works"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteDocument(ids[0]); err != nil {
		t.Fatal(err)
	}
	// Search stays open — only mutations are gated.
	body, _ := json.Marshal(SearchRequest{Query: "anything"})
	resp, err = http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search with token set: %d", resp.StatusCode)
	}
}
