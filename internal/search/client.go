package search

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"time"

	"toppriv/internal/core"
	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/telemetry"
	"toppriv/internal/textproc"
)

// Client is the trusted client module of Fig. 1. Each user query is
// analyzed, obfuscated into a cycle (Step 2), submitted query-by-query
// to the search engine (Step 3), and only the genuine query's results
// are returned (Step 4) — ghost traffic is transparent to the user.
//
// Word order within each submitted query is sorted before submission:
// the engine treats queries as bags of words, and canonical ordering
// removes any stylistic tell that could differentiate ghosts (§IV-C).
type Client struct {
	baseURL string
	httpc   *http.Client
	obf     *core.Obfuscator
	an      *textproc.Analyzer
	rng     *rand.Rand

	// K is the default result count per query.
	K int
	// Exec, when non-empty, asks the server to run every query under
	// this execution mode ("maxscore", "blockmax", "exhaustive",
	// "auto"). Results are identical across modes; the knob exists for
	// benchmarking and regression triage, not for the privacy
	// machinery.
	Exec string
	// AdminToken, when non-empty, is sent as a bearer token on the
	// mutation endpoints (AddDocuments, DeleteDocument); required when
	// the server was started with an admin token.
	AdminToken string
	// Retry bounds automatic retries of transient transport errors. The
	// zero value — the default — retries nothing; the cluster router's
	// shard client enables a small budget. Query submissions replay on
	// any refused or reset connection (they are idempotent); the
	// mutations (AddDocuments, DeleteDocument) target the single-node
	// /index surface, which is NOT idempotent, so they replay only
	// connection-refused failures — the one error proving the server
	// never saw the request and cannot have applied it. See RetryPolicy.
	Retry RetryPolicy
	// Jitter, when positive, inserts a uniform random delay up to this
	// duration before each query submission. Submitting a whole cycle
	// back-to-back leaves a timing signature (υ requests in one burst);
	// jitter smears the cycle over time the way TrackMeNot schedules
	// ghosts. Zero disables it.
	Jitter time.Duration
	// sleep is injectable for tests; defaults to time.Sleep.
	sleep func(time.Duration)
	// lastCycle retains the most recent cycle for inspection by tests
	// and examples (not part of the privacy surface).
	lastCycle *core.Cycle
}

// NewClient builds a trusted client talking to baseURL. A nil httpc
// uses http.DefaultClient; a nil analyzer uses the repository default.
// The RNG seeds the obfuscation decisions and must not be shared with
// the server.
func NewClient(baseURL string, httpc *http.Client, obf *core.Obfuscator, an *textproc.Analyzer, rng *rand.Rand) (*Client, error) {
	if obf == nil {
		return nil, fmt.Errorf("search: nil obfuscator")
	}
	if rng == nil {
		return nil, fmt.Errorf("search: nil rng")
	}
	if httpc == nil {
		httpc = http.DefaultClient
	}
	if an == nil {
		an = textproc.NewAnalyzer()
	}
	return &Client{
		baseURL: strings.TrimRight(baseURL, "/"),
		httpc:   httpc,
		obf:     obf,
		an:      an,
		rng:     rng,
		K:       10,
		sleep:   time.Sleep,
	}, nil
}

// Search runs one private search: it obfuscates the raw query, submits
// the cycle query-by-query (υ HTTP round-trips, optionally
// jitter-spaced), and returns only the genuine results. SearchCycle is
// the single-round-trip alternative.
func (c *Client) Search(rawQuery string) ([]SearchHit, error) {
	cycle, err := c.obfuscate(rawQuery)
	if err != nil {
		return nil, err
	}
	var userHits []SearchHit
	for i, q := range cycle.Queries {
		if c.Jitter > 0 {
			c.sleep(time.Duration(c.rng.Int63n(int64(c.Jitter))))
		}
		hits, err := c.submit(q)
		if err != nil {
			return nil, fmt.Errorf("search: submit query %d/%d: %w", i+1, cycle.Len(), err)
		}
		// Step 4: keep only the genuine query's results.
		if i == cycle.UserIndex {
			userHits = hits
		}
	}
	return userHits, nil
}

// SearchCycle runs one private search submitting the entire
// obfuscation cycle in a single POST /search/batch round-trip: the
// server still logs each cycle member as a separate query-log entry —
// the adversary's artifact, and the (ε1, ε2) guarantee over it, are
// unchanged — but the cycle pays one HTTP exchange instead of υ, and
// the engine shares term resolution and postings buffers across the
// members. Only the genuine query's results are returned. Jitter does
// not apply (there is nothing to space out inside one request); use
// Search when smearing the cycle over time matters more than latency.
func (c *Client) SearchCycle(ctx context.Context, rawQuery string) ([]SearchHit, error) {
	cycle, err := c.obfuscate(rawQuery)
	if err != nil {
		return nil, err
	}
	responses, err := c.SubmitBatch(ctx, cycle.Queries)
	if err != nil {
		return nil, fmt.Errorf("search: submit cycle: %w", err)
	}
	return responses[cycle.UserIndex].Hits, nil
}

// obfuscate analyzes and obfuscates one raw query, retaining the cycle
// for inspection.
func (c *Client) obfuscate(rawQuery string) (*core.Cycle, error) {
	terms := c.an.Analyze(rawQuery)
	if len(terms) == 0 {
		return nil, fmt.Errorf("search: query %q has no indexable terms", rawQuery)
	}
	cycle, err := c.obf.Obfuscate(terms, c.rng)
	if err != nil {
		return nil, fmt.Errorf("search: obfuscate: %w", err)
	}
	c.lastCycle = cycle
	return cycle, nil
}

// SearchPlain submits the query without obfuscation (for comparisons).
func (c *Client) SearchPlain(rawQuery string) ([]SearchHit, error) {
	terms := c.an.Analyze(rawQuery)
	if len(terms) == 0 {
		return nil, fmt.Errorf("search: query %q has no indexable terms", rawQuery)
	}
	return c.submit(terms)
}

// SubmitBatch sends one POST /search/batch request with the given term
// bags (each canonically sorted before submission, like submit) and
// returns the per-member responses, stats included, aligned with
// queries by index. The context bounds the whole exchange.
func (c *Client) SubmitBatch(ctx context.Context, queries [][]string) ([]SearchResponse, error) {
	batch := BatchSearchRequest{Queries: make([]SearchRequest, len(queries))}
	for i, terms := range queries {
		sorted := append([]string{}, terms...)
		sort.Strings(sorted)
		batch.Queries[i] = SearchRequest{Query: strings.Join(sorted, " "), K: c.K, Exec: c.Exec}
	}
	body, err := json.Marshal(batch)
	if err != nil {
		return nil, err
	}
	resp, err := c.Retry.Do(c.httpc, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+"/search/batch", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var br BatchSearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, err
	}
	if len(br.Responses) != len(queries) {
		return nil, fmt.Errorf("server returned %d responses for %d queries", len(br.Responses), len(queries))
	}
	return br.Responses, nil
}

// LastCycle returns the cycle generated by the most recent Search call,
// or nil. Diagnostic only.
func (c *Client) LastCycle() *core.Cycle { return c.lastCycle }

// submit sends one bag of terms as a search request. Terms are sorted
// into canonical order before submission.
func (c *Client) submit(terms []string) ([]SearchHit, error) {
	sorted := append([]string{}, terms...)
	sort.Strings(sorted)
	body, err := json.Marshal(SearchRequest{Query: strings.Join(sorted, " "), K: c.K, Exec: c.Exec})
	if err != nil {
		return nil, err
	}
	resp, err := c.Retry.Do(c.httpc, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, c.baseURL+"/search", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	return sr.Hits, nil
}

// NewAdminClient builds a client for the administrative surface only —
// AddDocuments, DeleteDocument, FetchDocument — with no obfuscator.
// Search and SearchPlain must not be called on it.
func NewAdminClient(baseURL string, httpc *http.Client) *Client {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &Client{baseURL: strings.TrimRight(baseURL, "/"), httpc: httpc}
}

// AddDocuments ingests documents into a live server (POST /index),
// returning the IDs the store assigned. Servers over an immutable index
// refuse with 405.
func (c *Client) AddDocuments(docs []corpus.Document) ([]corpus.DocID, error) {
	body, err := json.Marshal(IndexRequest{Docs: docs})
	if err != nil {
		return nil, err
	}
	resp, err := c.Retry.DoMutation(c.httpc, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, c.baseURL+"/index", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		c.authorize(req)
		return req, nil
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var ir IndexResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		return nil, err
	}
	return ir.IDs, nil
}

// DeleteDocument tombstones one document on a live server
// (DELETE /doc/{id}).
func (c *Client) DeleteDocument(id corpus.DocID) error {
	resp, err := c.Retry.DoMutation(c.httpc, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/doc/%d", c.baseURL, id), nil)
		if err != nil {
			return nil, err
		}
		c.authorize(req)
		return req, nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	return nil
}

// authorize attaches the bearer token when one is configured.
func (c *Client) authorize(req *http.Request) {
	if c.AdminToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.AdminToken)
	}
}

// Stats retrieves the server's index-shape statistics (GET /stats):
// document and term counts, the serialized size, and the exact
// in-memory footprint of the block-compressed postings
// (PostingsBytes/BytesPerDoc) — the numbers the paper's PIR cost
// argument turns on.
func (c *Client) Stats() (index.Stats, error) {
	var s index.Stats
	resp, err := c.httpc.Get(c.baseURL + "/stats")
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("server returned %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return s, fmt.Errorf("decoding stats: %w", err)
	}
	return s, nil
}

// StatsFull retrieves the complete GET /stats reply — the index-shape
// statistics plus the query-log ring state (retained/evicted counts
// and absolute head/tail sequence numbers).
func (c *Client) StatsFull() (StatsResponse, error) {
	var s StatsResponse
	resp, err := c.httpc.Get(c.baseURL + "/stats")
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("server returned %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return s, fmt.Errorf("decoding stats: %w", err)
	}
	return s, nil
}

// MetricsText retrieves the raw Prometheus text exposition from
// GET /metrics. Callers wanting structure can feed it to
// telemetry.ParseText.
func (c *Client) MetricsText() (string, error) {
	resp, err := c.httpc.Get(c.baseURL + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("server returned %s", resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Traces retrieves the server's retained phase traces (GET
// /debug/traces, admin-token-gated when the server has one). n > 0
// limits the reply to the most recent n traces.
func (c *Client) Traces(n int) ([]telemetry.PhaseTrace, error) {
	url := c.baseURL + "/debug/traces"
	if n > 0 {
		url += fmt.Sprintf("?n=%d", n)
	}
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	c.authorize(req)
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var tr TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return nil, fmt.Errorf("decoding traces: %w", err)
	}
	return tr.Traces, nil
}

// FetchDocument retrieves a document body (Step 7 of Fig. 1; the paper
// notes result-document privacy is out of scope and handled by [15]).
func (c *Client) FetchDocument(id int) (json.RawMessage, error) {
	resp, err := c.httpc.Get(fmt.Sprintf("%s/doc/%d", c.baseURL, id))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server returned %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}
