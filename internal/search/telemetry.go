package search

import (
	"net/http"
	"strconv"

	"toppriv/internal/telemetry"
)

// MetricsBackend is the optional wiring surface a backend offers:
// both *vsm.Engine and *segment.Store implement it. NewServer calls
// it with the server's registry and trace ring, so constructing a
// server over an instrumentable backend lights up engine-level
// histograms and phase traces with no extra plumbing.
type MetricsBackend interface {
	EnableMetrics(reg *telemetry.Registry, ring *telemetry.TraceRing)
}

// Registry exposes the server's metric registry so the process can
// register additional scrape-time gauges (the facade adds the LDA
// model-staleness gauge; searchd could add build info) onto the same
// GET /metrics exposition.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// TraceRing exposes the server's phase-trace ring (what GET
// /debug/traces serves).
func (s *Server) TraceRing() *telemetry.TraceRing { return s.ring }

// endpointMetrics is one endpoint's pre-resolved request/error/
// in-flight handles.
type endpointMetrics struct {
	reqs     *telemetry.Counter
	errs     *telemetry.Counter
	inflight *telemetry.Gauge
}

// instrument wraps a handler with per-endpoint request, error and
// in-flight tracking. Children are resolved here, once per endpoint
// at mux construction; the per-request cost is three atomic ops plus
// a small ResponseWriter wrapper.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	em := &endpointMetrics{
		reqs:     s.httpReqs.With(endpoint),
		errs:     s.httpErrs.With(endpoint),
		inflight: s.httpInflight.With(endpoint),
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		em.reqs.Inc()
		em.inflight.Inc()
		defer em.inflight.Dec()
		sw := statusRecorder{ResponseWriter: w}
		h(&sw, r)
		if sw.status >= 400 {
			em.errs.Inc()
		}
	})
}

// statusRecorder captures the response status so the error counter
// can distinguish 2xx from 4xx/5xx without the handlers reporting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// handleMetrics serves the Prometheus text-format exposition of every
// family registered with the server's registry — engine histograms,
// store gauges, HTTP counters, and whatever the process added through
// Registry().
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// A write error means the client went away mid-scrape; the response
	// is already partially written, so there is nothing to report.
	_ = s.reg.WriteText(w)
}

// TracesResponse is the GET /debug/traces reply: the retained phase
// traces, oldest first.
type TracesResponse struct {
	Traces []telemetry.PhaseTrace `json:"traces"`
}

// handleTraces serves the last-N completed query phase traces as
// JSON. Admin-token-gated like the mutation endpoints: traces carry
// no query text, but their timing and work counters still profile the
// workload, which is operator information, not public information.
// ?n= limits the reply to the most recent n traces.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	if !s.authorizeAdmin(w, r) {
		return
	}
	traces := s.ring.Snapshot()
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		if n < len(traces) {
			traces = traces[len(traces)-n:]
		}
	}
	if traces == nil {
		traces = []telemetry.PhaseTrace{}
	}
	writeJSON(w, TracesResponse{Traces: traces})
}

// initTelemetry builds the server-owned registry, trace ring and HTTP
// families, and hands the registry to the backend when it can accept
// one.
func (s *Server) initTelemetry() {
	s.reg = telemetry.NewRegistry()
	s.ring = telemetry.NewTraceRing(telemetry.DefaultTraceCap)
	s.httpReqs = s.reg.CounterVec("toppriv_http_requests_total",
		"HTTP requests received, by endpoint.", "endpoint")
	s.httpErrs = s.reg.CounterVec("toppriv_http_errors_total",
		"HTTP responses with status >= 400, by endpoint.", "endpoint")
	s.httpInflight = s.reg.GaugeVec("toppriv_http_inflight",
		"HTTP requests currently being served, by endpoint.", "endpoint")
	s.reg.CounterFunc("toppriv_querylog_evicted_total",
		"Query-log entries evicted from the ring (oldest-first).",
		func() float64 { return float64(s.logEvicted.Load()) })
	s.reg.GaugeFunc("toppriv_querylog_retained",
		"Query-log entries currently retained.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.log))
		})
	if mb, ok := s.engine.(MetricsBackend); ok {
		mb.EnableMetrics(s.reg, s.ring)
	}
}
