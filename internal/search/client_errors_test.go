package search

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestClientBatchErrorPaths pins the HTTP client's failure behavior on
// the batch surface: malformed JSON replies, non-200 statuses,
// server-rejected oversized batches, a response/request count
// mismatch, and a context deadline expiring mid-request must each
// surface as errors, never as silently-wrong results.
func TestClientBatchErrorPaths(t *testing.T) {
	f := getFixture(t)
	queries := [][]string{
		f.an.Analyze(f.topicQueryText(0, 4)),
		f.an.Analyze(f.topicQueryText(1, 4)),
	}
	newClient := func(url string) *Client {
		cl, err := NewClient(url, nil, f.obf, f.an, rand.New(rand.NewSource(71)))
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}

	t.Run("malformed JSON", func(t *testing.T) {
		garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(`{"responses": [{`))
		}))
		defer garbage.Close()
		if _, err := newClient(garbage.URL).SubmitBatch(context.Background(), queries); err == nil {
			t.Error("malformed JSON must error")
		}
	})

	t.Run("non-200 status", func(t *testing.T) {
		failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "engine on fire", http.StatusInternalServerError)
		}))
		defer failing.Close()
		_, err := newClient(failing.URL).SubmitBatch(context.Background(), queries)
		if err == nil {
			t.Fatal("500 must error")
		}
		if !strings.Contains(err.Error(), "500") || !strings.Contains(err.Error(), "engine on fire") {
			t.Errorf("error should carry status and body: %v", err)
		}
	})

	t.Run("oversized batch", func(t *testing.T) {
		f.server.SetMaxBatch(1)
		defer f.server.SetMaxBatch(0)
		_, err := newClient(f.ts.URL).SubmitBatch(context.Background(), queries)
		if err == nil {
			t.Fatal("oversized batch must error")
		}
		if !strings.Contains(err.Error(), "400") {
			t.Errorf("oversized batch should be a 400: %v", err)
		}
	})

	t.Run("count mismatch", func(t *testing.T) {
		short := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(`{"responses": [{"hits": []}]}`))
		}))
		defer short.Close()
		_, err := newClient(short.URL).SubmitBatch(context.Background(), queries)
		if err == nil || !strings.Contains(err.Error(), "1 responses for 2 queries") {
			t.Errorf("response-count mismatch must error, got %v", err)
		}
	})

	t.Run("context timeout mid-request", func(t *testing.T) {
		release := make(chan struct{})
		slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case <-release:
			case <-r.Context().Done():
			}
		}))
		defer slow.Close()
		defer close(release)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		_, err := newClient(slow.URL).SubmitBatch(ctx, queries)
		if err == nil {
			t.Fatal("expired context must error")
		}
		if !strings.Contains(err.Error(), context.DeadlineExceeded.Error()) {
			t.Errorf("error should reflect the deadline: %v", err)
		}
	})
}

// TestServerBatchStatsRoundTrip decodes the stats the batch endpoint
// emits: the JSON names are the bench metrics' names, and pruned
// execution's counters survive the trip.
func TestServerBatchStatsRoundTrip(t *testing.T) {
	f := getFixture(t)
	resp, br := postBatch(t, f.ts.URL, BatchSearchRequest{Queries: []SearchRequest{
		{Query: f.topicQueryText(2, 5), K: 5, Exec: "maxscore"},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	st := br.Responses[0].Stats
	if st == nil {
		t.Fatal("no stats")
	}
	if st.DocsScored == 0 {
		t.Error("docs_scored did not survive the HTTP round-trip")
	}
}
