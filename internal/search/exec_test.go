package search

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"testing"
)

func postSearch(t *testing.T, url string, req SearchRequest) (*http.Response, SearchResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SearchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, sr
}

// TestServerRejectsNegativeK pins the k-validation contract: negative
// is a 400, zero defaults to 10, and oversized asks are capped at the
// configured maximum instead of building a full-collection heap.
func TestServerKValidation(t *testing.T) {
	f := getFixture(t)
	q := f.topicQueryText(1, 4)

	resp, _ := postSearch(t, f.ts.URL, SearchRequest{Query: q, K: -3})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("k=-3 status %d, want 400", resp.StatusCode)
	}
	resp, sr := postSearch(t, f.ts.URL, SearchRequest{Query: q})
	if resp.StatusCode != http.StatusOK || len(sr.Hits) > 10 {
		t.Errorf("k=0: status %d, %d hits (default must be 10)", resp.StatusCode, len(sr.Hits))
	}

	f.server.SetMaxK(3)
	defer f.server.SetMaxK(0)
	resp, sr = postSearch(t, f.ts.URL, SearchRequest{Query: q, K: 500000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("oversized k status %d", resp.StatusCode)
	}
	if len(sr.Hits) > 3 {
		t.Errorf("oversized k returned %d hits, cap is 3", len(sr.Hits))
	}
}

// TestServerExecOverride exercises the per-request execution-mode
// knob: maxscore, blockmax, and exhaustive must return identical hit
// lists, and an unknown mode is a 400.
func TestServerExecOverride(t *testing.T) {
	f := getFixture(t)
	q := f.topicQueryText(2, 5)

	respEX, ex := postSearch(t, f.ts.URL, SearchRequest{Query: q, K: 10, Exec: "exhaustive"})
	if respEX.StatusCode != http.StatusOK {
		t.Fatalf("exhaustive status %d", respEX.StatusCode)
	}
	if len(ex.Hits) == 0 {
		t.Fatal("no hits under exhaustive")
	}
	for _, mode := range []string{"maxscore", "blockmax"} {
		resp, got := postSearch(t, f.ts.URL, SearchRequest{Query: q, K: 10, Exec: mode})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", mode, resp.StatusCode)
		}
		if !reflect.DeepEqual(got.Hits, ex.Hits) {
			t.Errorf("exec modes disagree:\n%s: %v\nexhaustive: %v", mode, got.Hits, ex.Hits)
		}
	}

	resp, _ := postSearch(t, f.ts.URL, SearchRequest{Query: q, Exec: "turbo"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown exec mode status %d, want 400", resp.StatusCode)
	}
}
