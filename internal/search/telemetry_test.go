package search

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/telemetry"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// telemetryFixture builds a fresh server per test so metric counts
// start from zero — the shared fixture's registry accumulates across
// tests and would make exact-count assertions order-dependent.
type telemetryFixture struct {
	server *Server
	ts     *httptest.Server
	gt     *corpus.GroundTruth
	an     *textproc.Analyzer
}

func newTelemetryFixture(t *testing.T) *telemetryFixture {
	t.Helper()
	spec := corpus.GenSpec{Seed: 97, NumDocs: 120, NumTopics: 4, DocLenMin: 40, DocLenMax: 70}
	an := textproc.NewAnalyzer()
	c, gt, err := corpus.Synthesize(spec, an)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := vsm.NewEngine(idx, an, vsm.Cosine)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(engine, c.Docs)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &telemetryFixture{server: srv, ts: ts, gt: gt, an: an}
}

func (f *telemetryFixture) queryText(topic, n int) string {
	var out []string
	for _, w := range f.gt.TopicWords[topic] {
		if _, ok := f.an.AnalyzeTerm(w); ok {
			out = append(out, w)
			if len(out) == n {
				break
			}
		}
	}
	return strings.Join(out, " ")
}

func (f *telemetryFixture) search(t *testing.T, req SearchRequest) SearchResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(f.ts.URL+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search returned %s", resp.Status)
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// scrape fetches /metrics and parses it back through the package's
// own text-format parser.
func (f *telemetryFixture) scrape(t *testing.T) map[string]telemetry.ParsedFamily {
	t.Helper()
	resp, err := http.Get(f.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics returned %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text format v0.0.4", ct)
	}
	fams, err := telemetry.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parsing /metrics exposition: %v", err)
	}
	byName := make(map[string]telemetry.ParsedFamily, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	return byName
}

func findSample(fam telemetry.ParsedFamily, labels map[string]string) (telemetry.ParsedSample, bool) {
	for _, s := range fam.Samples {
		ok := true
		for k, v := range labels {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return telemetry.ParsedSample{}, false
}

func TestMetricsEndpoint(t *testing.T) {
	f := newTelemetryFixture(t)
	const n = 5
	for i := 0; i < n; i++ {
		f.search(t, SearchRequest{Query: f.queryText(i%4, 4), K: 5})
	}
	fams := f.scrape(t)

	reqs, ok := fams["toppriv_http_requests_total"]
	if !ok {
		t.Fatal("toppriv_http_requests_total missing from exposition")
	}
	if s, ok := findSample(reqs, map[string]string{"endpoint": "/search"}); !ok || s.Value != n {
		t.Fatalf("http_requests_total{endpoint=/search} = %v (found=%v), want %d", s.Value, ok, n)
	}

	queries, ok := fams["toppriv_queries_total"]
	if !ok {
		t.Fatal("toppriv_queries_total missing from exposition")
	}
	var total float64
	for _, s := range queries.Samples {
		if s.Labels["scorer"] != "cosine" {
			t.Fatalf("queries_total scorer = %q, want cosine", s.Labels["scorer"])
		}
		total += s.Value
	}
	if total != n {
		t.Fatalf("sum of toppriv_queries_total = %v, want %d", total, n)
	}

	lat, ok := fams["toppriv_query_seconds"]
	if !ok {
		t.Fatal("toppriv_query_seconds missing from exposition")
	}
	if lat.Type != "histogram" {
		t.Fatalf("toppriv_query_seconds TYPE = %q, want histogram", lat.Type)
	}
	var count float64
	for _, s := range lat.Samples {
		if strings.HasSuffix(s.Name, "_count") {
			count += s.Value
		}
	}
	if count != n {
		t.Fatalf("toppriv_query_seconds observation count = %v, want %d", count, n)
	}

	phase, ok := fams["toppriv_query_phase_seconds"]
	if !ok {
		t.Fatal("toppriv_query_phase_seconds missing from exposition")
	}
	for _, want := range []string{"resolve", "fetch", "traverse", "merge"} {
		found := false
		for _, s := range phase.Samples {
			if s.Labels["phase"] == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("toppriv_query_phase_seconds has no phase=%q samples", want)
		}
	}

	if _, ok := fams["toppriv_querylog_retained"]; !ok {
		t.Fatal("toppriv_querylog_retained missing from exposition")
	}
	if _, ok := fams["toppriv_querylog_evicted_total"]; !ok {
		t.Fatal("toppriv_querylog_evicted_total missing from exposition")
	}
}

func TestInlineTrace(t *testing.T) {
	f := newTelemetryFixture(t)
	q := f.queryText(1, 5)
	sr := f.search(t, SearchRequest{Query: q, K: 5, Trace: true})
	if sr.Trace == nil {
		t.Fatal("trace requested but response carries none")
	}
	tr := sr.Trace
	if tr.TotalNS <= 0 {
		t.Fatalf("trace TotalNS = %d, want > 0", tr.TotalNS)
	}
	if tr.Terms == 0 {
		t.Fatal("trace Terms = 0, want the resolved term count")
	}
	if tr.K != 5 {
		t.Fatalf("trace K = %d, want 5", tr.K)
	}
	if tr.Scorer != "cosine" {
		t.Fatalf("trace Scorer = %q, want cosine", tr.Scorer)
	}
	sum := tr.ResolveNS + tr.FetchNS + tr.TraverseNS + tr.MergeNS
	if sum > tr.TotalNS {
		t.Fatalf("phase sum %d exceeds total %d", sum, tr.TotalNS)
	}
	// The trace must never carry query content: marshal it and check no
	// query term leaks into the JSON. This guards the wire shape, not
	// just the struct definition.
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range strings.Fields(q) {
		if bytes.Contains(b, []byte(w)) {
			t.Fatalf("trace JSON %s leaks query term %q", b, w)
		}
	}
	// An untraced request stays untraced.
	if sr2 := f.search(t, SearchRequest{Query: q, K: 5}); sr2.Trace != nil {
		t.Fatal("trace present without being requested")
	}
}

func TestBatchInlineTrace(t *testing.T) {
	f := newTelemetryFixture(t)
	// Members drawn from one topic overlap heavily, so the cycle-at-a-
	// time shared traversal engages and the trace carries the batch
	// size.
	batch := BatchSearchRequest{Queries: []SearchRequest{
		{Query: f.queryText(0, 4), K: 5, Trace: true},
		{Query: f.queryText(0, 5), K: 5},
		{Query: f.queryText(0, 6), K: 5, Trace: true},
	}}
	body, _ := json.Marshal(batch)
	resp, err := http.Post(f.ts.URL+"/search/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch returned %s", resp.Status)
	}
	var br BatchSearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Responses[0].Trace == nil || br.Responses[2].Trace == nil {
		t.Fatal("tracing members got no trace")
	}
	if br.Responses[1].Trace != nil {
		t.Fatal("non-tracing member got a trace")
	}
	if b := br.Responses[0].Trace.Batch; b == 0 {
		t.Fatal("batch trace carries no batch size")
	}
}

func TestDebugTraces(t *testing.T) {
	f := newTelemetryFixture(t)
	f.server.SetAdminToken("hunter2")
	for i := 0; i < 3; i++ {
		f.search(t, SearchRequest{Query: f.queryText(i%4, 4), K: 5})
	}

	get := func(path, token string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, f.ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := get("/debug/traces", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /debug/traces returned %s, want 401", resp.Status)
	}

	resp = get("/debug/traces", "hunter2")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces returned %s", resp.Status)
	}
	var tr TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Traces) != 3 {
		t.Fatalf("retained %d traces, want 3", len(tr.Traces))
	}
	for i := 1; i < len(tr.Traces); i++ {
		if tr.Traces[i].Seq <= tr.Traces[i-1].Seq {
			t.Fatalf("traces not in seq order: %d then %d", tr.Traces[i-1].Seq, tr.Traces[i].Seq)
		}
	}

	resp = get("/debug/traces?n=1", "hunter2")
	defer resp.Body.Close()
	var one TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	if len(one.Traces) != 1 || one.Traces[0].Seq != tr.Traces[2].Seq {
		t.Fatalf("?n=1 returned %d traces (seq %v), want the newest", len(one.Traces), one.Traces)
	}

	resp = get("/debug/traces?n=bogus", "hunter2")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n returned %s, want 400", resp.Status)
	}
}

func TestQueryLogStatsAndEviction(t *testing.T) {
	f := newTelemetryFixture(t)
	f.server.SetQueryLogCap(3)
	for i := 0; i < 5; i++ {
		f.search(t, SearchRequest{Query: f.queryText(i%4, 3), K: 3})
	}

	resp, err := http.Get(f.ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	ql := st.QueryLog
	if ql.Retained != 3 || ql.Evicted != 2 || ql.HeadSeq != 2 || ql.TailSeq != 5 {
		t.Fatalf("querylog stats = %+v, want retained=3 evicted=2 head=2 tail=5", ql)
	}
	if st.NumDocs == 0 {
		t.Fatal("index stats lost from /stats reply")
	}

	fams := f.scrape(t)
	ev, ok := fams["toppriv_querylog_evicted_total"]
	if !ok || len(ev.Samples) == 0 || ev.Samples[0].Value != 2 {
		t.Fatalf("toppriv_querylog_evicted_total = %+v, want 2", ev)
	}

	// Shrinking the cap evicts oldest-first and counts those too.
	f.server.SetQueryLogCap(1)
	if got := f.server.queryLogStats(); got.Retained != 1 || got.Evicted != 4 || got.HeadSeq != 4 {
		t.Fatalf("after shrink: %+v, want retained=1 evicted=4 head=4", got)
	}
}

func TestHTTPErrorCounter(t *testing.T) {
	f := newTelemetryFixture(t)
	resp, err := http.Post(f.ts.URL+"/search", "application/json", strings.NewReader(`{"query":""}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty query returned %s, want 400", resp.Status)
	}
	fams := f.scrape(t)
	errs, ok := fams["toppriv_http_errors_total"]
	if !ok {
		t.Fatal("toppriv_http_errors_total missing from exposition")
	}
	if s, ok := findSample(errs, map[string]string{"endpoint": "/search"}); !ok || s.Value != 1 {
		t.Fatalf("http_errors_total{endpoint=/search} = %v (found=%v), want 1", s.Value, ok)
	}
}

func TestClientTelemetryHelpers(t *testing.T) {
	f := getFixture(t)
	client, err := NewClient(f.ts.URL, nil, f.obf, f.an, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.SearchPlain(f.topicQueryText(0, 4)); err != nil {
		t.Fatal(err)
	}

	text, err := client.MetricsText()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "# TYPE toppriv_query_seconds histogram") {
		t.Fatalf("MetricsText missing query histogram; got %d bytes", len(text))
	}

	traces, err := client.Traces(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("Traces returned none after a query")
	}

	st, err := client.StatsFull()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumDocs == 0 || st.QueryLog.TailSeq == 0 {
		t.Fatalf("StatsFull = %+v, want index stats and querylog seq", st)
	}
}
