package search

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"syscall"
	"time"
)

// RetryPolicy bounds automatic retries of transient transport failures
// — connection refused or reset, the failures a restarting or briefly
// overloaded server produces. The zero value retries nothing, which is
// the Client default: ordinary clients surface the first error, while a
// scatter-gather router enables a small budget so one dropped
// connection does not degrade a whole cycle.
//
// Only transport errors are retried, never HTTP status codes: a
// response, even a 5xx, means the request may have executed, and
// replaying a mutation on that evidence would double-apply it.
type RetryPolicy struct {
	// Max is the number of retries after the initial attempt.
	Max int
	// Base is the first backoff delay, doubling per retry (32ms when
	// zero with Max > 0).
	Base time.Duration
	// MaxDelay caps the grown delay (1s when zero).
	MaxDelay time.Duration
}

// TransientError reports whether err is a transport failure worth
// retrying: the connection never carried a response (refused, reset,
// broken pipe), so the request provably did not execute on the server.
// Context cancellation and deadline expiry are never transient — the
// caller gave up, retrying would outlive its budget.
func TransientError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// Do executes build-then-send up to 1+Max times, backing off
// exponentially with jitter between attempts. build constructs a fresh
// request each attempt — a consumed request body cannot be resent. The
// request's context bounds the whole loop, backoff waits included.
func (p RetryPolicy) Do(httpc *http.Client, build func() (*http.Request, error)) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := httpc.Do(req)
		if err == nil || attempt >= p.Max || !TransientError(err) {
			return resp, err
		}
		delay := p.delay(attempt)
		select {
		case <-req.Context().Done():
			return nil, err
		case <-time.After(delay):
		}
	}
}

// delay computes the backoff before retry #attempt: Base doubled per
// attempt, capped at MaxDelay, with the upper half jittered so a fleet
// of clients retrying the same blip does not re-synchronize into a
// thundering herd.
func (p RetryPolicy) delay(attempt int) time.Duration {
	base := p.Base
	if base <= 0 {
		base = 32 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = time.Second
	}
	d := base << uint(attempt)
	if d <= 0 || d > maxd {
		d = maxd
	}
	half := int64(d / 2)
	return time.Duration(half + rand.Int63n(half+1))
}
