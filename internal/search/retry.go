package search

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"syscall"
	"time"
)

// RetryPolicy bounds automatic retries of transient transport failures
// — connection refused or reset, the failures a restarting or briefly
// overloaded server produces. The zero value retries nothing, which is
// the Client default: ordinary clients surface the first error, while a
// scatter-gather router enables a small budget so one dropped
// connection does not degrade a whole cycle.
//
// Only transport errors are retried, never HTTP status codes: a
// response, even a 5xx, means the request may have executed, and
// replaying a mutation on that evidence would double-apply it. Do and
// DoMutation split the transport errors the same way: Do replays any
// connection that never carried a response — safe for idempotent
// calls — while DoMutation replays only connections refused outright,
// the one failure proving the server never saw the request.
type RetryPolicy struct {
	// Max is the number of retries after the initial attempt.
	Max int
	// Base is the first backoff delay, doubling per retry (32ms when
	// zero with Max > 0).
	Base time.Duration
	// MaxDelay caps the grown delay (1s when zero).
	MaxDelay time.Duration
}

// TransientError reports whether err is a transport failure worth
// retrying for an idempotent request: the connection never carried a
// response (refused, reset, broken pipe). A reset or broken pipe does
// NOT prove the request went unexecuted — the server may have consumed
// and applied it and only the response was lost — so this predicate is
// safe only where replaying the request is harmless; non-idempotent
// mutations must use UnsentError instead. Context cancellation and
// deadline expiry are never transient — the caller gave up, retrying
// would outlive its budget.
func TransientError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// UnsentError reports whether err proves the request never reached a
// server: the dial was refused outright, so nothing was sent and
// nothing can have executed. The only predicate safe for retrying
// non-idempotent mutations.
func UnsentError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return errors.Is(err, syscall.ECONNREFUSED)
}

// Do executes build-then-send up to 1+Max times, backing off
// exponentially with jitter between attempts, retrying any
// TransientError. Use it only for idempotent requests: a reset may
// arrive after the server executed the request, and Do will replay.
// build constructs a fresh request each attempt — a consumed request
// body cannot be resent. The request's context bounds the whole loop,
// backoff waits included.
func (p RetryPolicy) Do(httpc *http.Client, build func() (*http.Request, error)) (*http.Response, error) {
	return p.do(httpc, build, TransientError)
}

// DoMutation executes like Do but retries only failures that prove the
// request never reached a server (UnsentError): resets and broken
// pipes surface immediately, because the request may already have
// executed and replaying it against a non-idempotent endpoint would
// double-apply it.
func (p RetryPolicy) DoMutation(httpc *http.Client, build func() (*http.Request, error)) (*http.Response, error) {
	return p.do(httpc, build, UnsentError)
}

func (p RetryPolicy) do(httpc *http.Client, build func() (*http.Request, error), retriable func(error) bool) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := httpc.Do(req)
		if err == nil || attempt >= p.Max || !retriable(err) {
			return resp, err
		}
		delay := p.delay(attempt)
		select {
		case <-req.Context().Done():
			return nil, err
		case <-time.After(delay):
		}
	}
}

// delay computes the backoff before retry #attempt: Base doubled per
// attempt, capped at MaxDelay, with the upper half jittered so a fleet
// of clients retrying the same blip does not re-synchronize into a
// thundering herd.
func (p RetryPolicy) delay(attempt int) time.Duration {
	base := p.Base
	if base <= 0 {
		base = 32 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = time.Second
	}
	d := base << uint(attempt)
	if d <= 0 || d > maxd {
		d = maxd
	}
	half := int64(d / 2)
	return time.Duration(half + rand.Int63n(half+1))
}
