package search

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"testing"

	"toppriv/internal/adversary"
)

func postBatch(t *testing.T, url string, batch BatchSearchRequest) (*http.Response, BatchSearchResponse) {
	t.Helper()
	body, _ := json.Marshal(batch)
	resp, err := http.Post(url+"/search/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br BatchSearchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, br
}

// TestServerBatchEndpoint pins the batch surface: responses align with
// the queries by index, each member's hits equal the single-endpoint
// hits for the same query, and execution stats cross the HTTP layer.
func TestServerBatchEndpoint(t *testing.T) {
	f := getFixture(t)
	queries := []SearchRequest{
		{Query: f.topicQueryText(0, 5), K: 7},
		{Query: f.topicQueryText(1, 4), K: 3},
		{Query: f.topicQueryText(0, 6), K: 5, Exec: "exhaustive"},
	}
	resp, br := postBatch(t, f.ts.URL, BatchSearchRequest{Queries: queries})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(br.Responses) != len(queries) {
		t.Fatalf("%d responses for %d queries", len(br.Responses), len(queries))
	}
	for i, q := range queries {
		single, sr := postSearch(t, f.ts.URL, q)
		if single.StatusCode != http.StatusOK {
			t.Fatalf("single member %d status %d", i, single.StatusCode)
		}
		if !reflect.DeepEqual(br.Responses[i].Hits, sr.Hits) {
			t.Errorf("member %d: batch hits differ from single:\nbatch:  %v\nsingle: %v",
				i, br.Responses[i].Hits, sr.Hits)
		}
		if br.Responses[i].Stats == nil {
			t.Errorf("member %d: no stats in batch response", i)
		} else if br.Responses[i].Stats.DocsScored == 0 {
			t.Errorf("member %d: stats say nothing was scored", i)
		}
		if sr.Stats == nil || sr.Stats.DocsScored == 0 {
			t.Errorf("member %d: single response missing stats", i)
		}
	}
}

// TestServerBatchValidation pins the shared request decoding: the
// batch endpoint enforces exactly the single endpoint's rules — empty
// query, negative k, unknown exec mode — plus its own member cap, and
// rejected batches log nothing.
func TestServerBatchValidation(t *testing.T) {
	f := getFixture(t)
	q := f.topicQueryText(2, 4)

	for name, batch := range map[string]BatchSearchRequest{
		"empty batch":  {},
		"empty query":  {Queries: []SearchRequest{{Query: q}, {Query: "   "}}},
		"negative k":   {Queries: []SearchRequest{{Query: q}, {Query: q, K: -2}}},
		"unknown exec": {Queries: []SearchRequest{{Query: q, Exec: "turbo"}}},
	} {
		resp, _ := postBatch(t, f.ts.URL, batch)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// The member cap rejects oversized batches outright.
	f.server.SetMaxBatch(2)
	defer f.server.SetMaxBatch(0)
	resp, _ := postBatch(t, f.ts.URL, BatchSearchRequest{Queries: []SearchRequest{
		{Query: q}, {Query: q}, {Query: q},
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch status %d, want 400", resp.StatusCode)
	}

	// The SetMaxK clamp applies to batch members through the shared
	// decoder — the clamp can no longer be bypassed by batching.
	f.server.SetMaxK(3)
	defer f.server.SetMaxK(0)
	okResp, br := postBatch(t, f.ts.URL, BatchSearchRequest{Queries: []SearchRequest{{Query: q, K: 500000}}})
	if okResp.StatusCode != http.StatusOK {
		t.Fatalf("clamped batch status %d", okResp.StatusCode)
	}
	if len(br.Responses[0].Hits) > 3 {
		t.Errorf("batch member returned %d hits, SetMaxK cap is 3", len(br.Responses[0].Hits))
	}

	if log := f.server.QueryLog(); len(log) != 1 {
		// Only the single successful (clamped) batch should have logged.
		t.Errorf("query log has %d entries after validation failures, want 1", len(log))
	}
}

// TestBatchCycleAdversaryView is the privacy proof the batch endpoint
// must pass: submitting an obfuscation cycle through one POST
// /search/batch leaves exactly the query log that query-by-query
// submission leaves — same entries, same order, same sequence numbers
// — so the curious adversary of the threat model (who analyzes the
// retained log) cannot even tell which transport was used, and every
// log-based attack yields identical guesses. The (ε1, ε2) guarantee is
// a property of the cycle's content, which both transports submit
// verbatim.
func TestBatchCycleAdversaryView(t *testing.T) {
	f := getFixture(t)
	cl, err := NewClient(f.ts.URL, nil, f.obf, f.an, rand.New(rand.NewSource(61)))
	if err != nil {
		t.Fatal(err)
	}
	terms := f.an.Analyze(f.topicQueryText(3, 9))
	cycle, err := f.obf.Obfuscate(terms, rand.New(rand.NewSource(62)))
	if err != nil {
		t.Fatal(err)
	}

	// Transport A: one request per cycle member, in order.
	f.server.ResetLog()
	for _, q := range cycle.Queries {
		sorted := append([]string{}, q...)
		sort.Strings(sorted)
		resp, _ := postSearch(t, f.ts.URL, SearchRequest{Query: strings.Join(sorted, " "), K: 10})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sequential submit status %d", resp.StatusCode)
		}
	}
	seqLog := f.server.QueryLog()

	// Transport B: the whole cycle in one batch round-trip.
	f.server.ResetLog()
	if _, err := cl.SubmitBatch(context.Background(), cycle.Queries); err != nil {
		t.Fatal(err)
	}
	batchLog := f.server.QueryLog()

	if !reflect.DeepEqual(seqLog, batchLog) {
		t.Fatalf("adversary's view differs between transports:\nsequential: %v\nbatch:      %v", seqLog, batchLog)
	}
	if len(batchLog) != cycle.Len() {
		t.Fatalf("batch logged %d entries for a %d-query cycle", len(batchLog), cycle.Len())
	}

	// A log-based attack sees the same cycle either way and produces
	// the same guess — run the coherence attack over both recovered
	// logs with identical randomness.
	recover := func(log []LoggedQuery) [][]string {
		out := make([][]string, len(log))
		for i, entry := range log {
			out[i] = strings.Fields(entry.Query)
		}
		return out
	}
	attack := &adversary.CoherenceAttack{Eng: f.beng}
	guessSeq := attack.GuessUser(recover(seqLog), rand.New(rand.NewSource(63)))
	guessBatch := attack.GuessUser(recover(batchLog), rand.New(rand.NewSource(63)))
	if guessSeq != guessBatch {
		t.Errorf("coherence attack guesses differ: sequential %d, batch %d", guessSeq, guessBatch)
	}
}

// TestClientSearchCycleMatchesSearch: the single-round-trip cycle
// submission returns exactly the genuine query's results, like the
// query-by-query path does for the same cycle.
func TestClientSearchCycleMatchesSearch(t *testing.T) {
	f := getFixture(t)
	q := f.topicQueryText(1, 8)
	// Same RNG seed ⇒ both clients generate the same cycle.
	clA, err := NewClient(f.ts.URL, nil, f.obf, f.an, rand.New(rand.NewSource(64)))
	if err != nil {
		t.Fatal(err)
	}
	clB, err := NewClient(f.ts.URL, nil, f.obf, f.an, rand.New(rand.NewSource(64)))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := clA.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := clB.SearchCycle(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, batch) {
		t.Fatalf("cycle results differ:\nsequential: %v\nbatch:      %v", seq, batch)
	}
	if clB.LastCycle() == nil || clB.LastCycle().Len() != clA.LastCycle().Len() {
		t.Error("SearchCycle did not retain the cycle")
	}
}
