package search

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"toppriv/internal/belief"
	"toppriv/internal/core"
	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/lda"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

type fixture struct {
	server *Server
	ts     *httptest.Server
	obf    *core.Obfuscator
	beng   *belief.Engine
	gt     *corpus.GroundTruth
	an     *textproc.Analyzer
	c      *corpus.Corpus
}

var shared *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if shared != nil {
		shared.server.ResetLog()
		return shared
	}
	spec := corpus.GenSpec{Seed: 71, NumDocs: 400, NumTopics: 8, DocLenMin: 60, DocLenMax: 100}
	an := textproc.NewAnalyzer()
	c, gt, err := corpus.Synthesize(spec, an)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := vsm.NewEngine(idx, an, vsm.Cosine)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(engine, c.Docs)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := lda.Train(c, lda.TrainSpec{NumTopics: 8, Iterations: 100, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	inf, err := lda.NewInferencer(m, lda.InferSpec{})
	if err != nil {
		t.Fatal(err)
	}
	beng, err := belief.NewEngine(inf)
	if err != nil {
		t.Fatal(err)
	}
	obf, err := core.NewObfuscator(beng, core.Params{Eps1: 0.04, Eps2: 0.015})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	shared = &fixture{server: srv, ts: ts, obf: obf, beng: beng, gt: gt, an: an, c: c}
	return shared
}

func (f *fixture) topicQueryText(topic, n int) string {
	var out []string
	for _, w := range f.gt.TopicWords[topic] {
		if _, ok := f.an.AnalyzeTerm(w); ok {
			out = append(out, w)
			if len(out) == n {
				break
			}
		}
	}
	return strings.Join(out, " ")
}

func TestServerSearchEndpoint(t *testing.T) {
	f := getFixture(t)
	body, _ := json.Marshal(SearchRequest{Query: f.topicQueryText(0, 5), K: 7})
	resp, err := http.Post(f.ts.URL+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Hits) == 0 || len(sr.Hits) > 7 {
		t.Fatalf("got %d hits", len(sr.Hits))
	}
	if sr.Hits[0].Title == "" {
		t.Error("hits should carry titles when docs are provided")
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	f := getFixture(t)
	// Wrong method.
	resp, err := http.Get(f.ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /search status %d", resp.StatusCode)
	}
	// Bad JSON.
	resp, err = http.Post(f.ts.URL+"/search", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status %d", resp.StatusCode)
	}
	// Empty query.
	body, _ := json.Marshal(SearchRequest{Query: "   "})
	resp, err = http.Post(f.ts.URL+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty query status %d", resp.StatusCode)
	}
}

func TestServerDocEndpoint(t *testing.T) {
	f := getFixture(t)
	resp, err := http.Get(f.ts.URL + "/doc/0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc corpus.Document
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Text == "" {
		t.Error("document body empty")
	}
	for _, path := range []string{"/doc/999999", "/doc/-1", "/doc/abc"} {
		resp, err := http.Get(f.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestServerStatsEndpoint(t *testing.T) {
	f := getFixture(t)
	resp, err := http.Get(f.ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats index.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.NumDocs != 400 {
		t.Errorf("stats NumDocs = %d", stats.NumDocs)
	}
}

func TestServerQueryLog(t *testing.T) {
	f := getFixture(t)
	f.server.ResetLog()
	body, _ := json.Marshal(SearchRequest{Query: "stock market"})
	for i := 0; i < 3; i++ {
		resp, err := http.Post(f.ts.URL+"/search", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		body, _ = json.Marshal(SearchRequest{Query: "stock market"})
	}
	log := f.server.QueryLog()
	if len(log) != 3 {
		t.Fatalf("log has %d entries, want 3", len(log))
	}
	for i, entry := range log {
		if entry.Seq != i || entry.Query != "stock market" {
			t.Errorf("log[%d] = %+v", i, entry)
		}
	}
}

func TestClientPrivateSearchMatchesPlain(t *testing.T) {
	// The headline usability property of TopPriv: the user gets the
	// exact results of her genuine query, ghosts notwithstanding.
	f := getFixture(t)
	cl, err := NewClient(f.ts.URL, nil, f.obf, f.an, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	q := f.topicQueryText(1, 8)
	private, err := cl.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := cl.SearchPlain(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(private) != len(plain) {
		t.Fatalf("private %d hits, plain %d hits", len(private), len(plain))
	}
	for i := range private {
		if private[i].Doc != plain[i].Doc {
			t.Fatalf("result %d differs: %v vs %v", i, private[i], plain[i])
		}
	}
}

func TestClientSubmitsWholeCycle(t *testing.T) {
	f := getFixture(t)
	f.server.ResetLog()
	cl, err := NewClient(f.ts.URL, nil, f.obf, f.an, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Search(f.topicQueryText(2, 10)); err != nil {
		t.Fatal(err)
	}
	cycle := cl.LastCycle()
	if cycle == nil {
		t.Fatal("no cycle recorded")
	}
	log := f.server.QueryLog()
	if len(log) != cycle.Len() {
		t.Fatalf("server saw %d queries, cycle has %d", len(log), cycle.Len())
	}
	// The genuine query must be present in the log (sorted word order).
	sortedUser := append([]string{}, cycle.UserQuery()...)
	want := strings.Join(sortTerms(sortedUser), " ")
	found := false
	for _, entry := range log {
		if entry.Query == want {
			found = true
		}
	}
	if !found {
		t.Error("genuine query not found in server log")
	}
}

func TestClientRejectsEmptyQuery(t *testing.T) {
	f := getFixture(t)
	cl, _ := NewClient(f.ts.URL, nil, f.obf, f.an, rand.New(rand.NewSource(3)))
	if _, err := cl.Search("the of and"); err == nil {
		t.Error("stopword-only query must error")
	}
}

func TestClientFetchDocument(t *testing.T) {
	f := getFixture(t)
	cl, _ := NewClient(f.ts.URL, nil, f.obf, f.an, rand.New(rand.NewSource(4)))
	raw, err := cl.FetchDocument(0)
	if err != nil {
		t.Fatal(err)
	}
	var doc corpus.Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.ID != 0 {
		t.Errorf("fetched doc ID %d", doc.ID)
	}
	if _, err := cl.FetchDocument(999999); err == nil {
		t.Error("missing doc must error")
	}
}

func TestClientConstructorValidation(t *testing.T) {
	f := getFixture(t)
	if _, err := NewClient(f.ts.URL, nil, nil, f.an, rand.New(rand.NewSource(5))); err == nil {
		t.Error("nil obfuscator must error")
	}
	if _, err := NewClient(f.ts.URL, nil, f.obf, f.an, nil); err == nil {
		t.Error("nil rng must error")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, nil); err == nil {
		t.Error("nil engine must error")
	}
}

func sortTerms(terms []string) []string {
	out := append([]string{}, terms...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestClientJitterSleepsPerQuery(t *testing.T) {
	f := getFixture(t)
	cl, err := NewClient(f.ts.URL, nil, f.obf, f.an, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	var naps int
	cl.Jitter = time.Second
	cl.sleep = func(d time.Duration) {
		if d < 0 || d >= time.Second {
			t.Errorf("jitter delay %v outside [0, 1s)", d)
		}
		naps++
	}
	if _, err := cl.Search(f.topicQueryText(0, 10)); err != nil {
		t.Fatal(err)
	}
	if naps != cl.LastCycle().Len() {
		t.Errorf("slept %d times for a %d-query cycle", naps, cl.LastCycle().Len())
	}
}

func TestClientServerErrors(t *testing.T) {
	f := getFixture(t)
	// A server that always fails.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "index corrupted", http.StatusInternalServerError)
	}))
	defer bad.Close()
	cl, err := NewClient(bad.URL, nil, f.obf, f.an, rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Search(f.topicQueryText(0, 8))
	if err == nil {
		t.Fatal("expected error from failing server")
	}
	if !strings.Contains(err.Error(), "500") {
		t.Errorf("error should carry the status: %v", err)
	}
	// A server that is gone entirely.
	gone := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	gone.Close()
	cl2, _ := NewClient(gone.URL, nil, f.obf, f.an, rand.New(rand.NewSource(23)))
	if _, err := cl2.Search(f.topicQueryText(0, 8)); err == nil {
		t.Error("expected transport error")
	}
	// Garbage JSON response.
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{not json"))
	}))
	defer garbage.Close()
	cl3, _ := NewClient(garbage.URL, nil, f.obf, f.an, rand.New(rand.NewSource(24)))
	if _, err := cl3.Search(f.topicQueryText(0, 8)); err == nil {
		t.Error("expected decode error")
	}
}
