package search

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func TestTransientErrorClassification(t *testing.T) {
	if TransientError(nil) {
		t.Error("nil classified transient")
	}
	if TransientError(context.Canceled) || TransientError(context.DeadlineExceeded) {
		t.Error("context errors must not be transient")
	}
	// As the transport surfaces them: wrapped a few layers deep.
	wrapped := fmt.Errorf("Post %q: %w", "http://x", &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED})
	if !TransientError(wrapped) {
		t.Error("wrapped ECONNREFUSED not transient")
	}
	if !TransientError(&net.OpError{Op: "read", Err: syscall.ECONNRESET}) {
		t.Error("ECONNRESET not transient")
	}
	if TransientError(fmt.Errorf("server returned 500")) {
		t.Error("non-transport error classified transient")
	}
}

func TestUnsentErrorClassification(t *testing.T) {
	if UnsentError(nil) {
		t.Error("nil classified unsent")
	}
	if UnsentError(context.Canceled) || UnsentError(context.DeadlineExceeded) {
		t.Error("context errors must not be unsent")
	}
	wrapped := fmt.Errorf("Post %q: %w", "http://x", &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED})
	if !UnsentError(wrapped) {
		t.Error("wrapped ECONNREFUSED not unsent")
	}
	// A reset can arrive after the server executed the request and lost
	// only the response — it proves nothing about execution.
	if UnsentError(&net.OpError{Op: "read", Err: syscall.ECONNRESET}) {
		t.Error("ECONNRESET classified unsent")
	}
	if UnsentError(&net.OpError{Op: "write", Err: syscall.EPIPE}) {
		t.Error("EPIPE classified unsent")
	}
}

// flakyListener RST-kills the first n accepted connections, then serves
// normally — the shape of a server mid-restart.
type flakyListener struct {
	net.Listener
	kills atomic.Int32
}

func (l *flakyListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.kills.Load() <= 0 {
			return c, nil
		}
		l.kills.Add(-1)
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetLinger(0) // close sends RST, not FIN: the client sees ECONNRESET
		}
		c.Close()
	}
}

func TestRetryDoRecoversFromResets(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: inner}
	fl.kills.Store(2)
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})}
	go srv.Serve(fl)
	defer srv.Close()

	url := "http://" + inner.Addr().String() + "/"
	build := func() (*http.Request, error) { return http.NewRequest(http.MethodGet, url, nil) }

	// Zero policy: the first reset surfaces.
	if _, err := (RetryPolicy{}).Do(http.DefaultClient, build); err == nil {
		t.Fatal("zero policy retried a reset connection")
	}
	// One kill remains; a budget of 2 retries must get through.
	p := RetryPolicy{Max: 2, Base: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	resp, err := p.Do(http.DefaultClient, build)
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after recovery", resp.StatusCode)
	}
}

// TestDoMutationNeverReplaysResets: a reset mid-exchange may follow
// server-side execution, so DoMutation must surface it on the first
// attempt even with budget left — replaying could double-apply.
func TestDoMutationNeverReplaysResets(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: inner}
	fl.kills.Store(1)
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})}
	go srv.Serve(fl)
	defer srv.Close()

	url := "http://" + inner.Addr().String() + "/"
	builds := 0
	p := RetryPolicy{Max: 3, Base: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	_, err = p.DoMutation(http.DefaultClient, func() (*http.Request, error) {
		builds++
		return http.NewRequest(http.MethodPost, url, nil)
	})
	if err == nil {
		t.Fatal("reset did not surface through DoMutation")
	}
	if builds != 1 {
		t.Fatalf("DoMutation made %d attempts on a reset, want 1", builds)
	}
}

// TestDoMutationRetriesRefused: a refused dial proves the server never
// saw the request, so mutations may safely ride out a restart window.
func TestDoMutationRetriesRefused(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	builds := 0
	p := RetryPolicy{Max: 2, Base: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	_, err = p.DoMutation(http.DefaultClient, func() (*http.Request, error) {
		builds++
		return http.NewRequest(http.MethodPost, "http://"+addr+"/", nil)
	})
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if builds != 3 {
		t.Fatalf("made %d attempts, want 1+Max = 3", builds)
	}
}

func TestRetryDoGivesUpOnRefused(t *testing.T) {
	// A port with nothing listening: every dial is refused.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	builds := 0
	p := RetryPolicy{Max: 2, Base: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	_, err = p.Do(http.DefaultClient, func() (*http.Request, error) {
		builds++
		return http.NewRequest(http.MethodGet, "http://"+addr+"/", nil)
	})
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if !TransientError(err) {
		t.Fatalf("final error not the transport failure: %v", err)
	}
	if builds != 3 {
		t.Fatalf("made %d attempts, want 1+Max = 3", builds)
	}
	// The request context bounds the loop, backoff included.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	builds = 0
	slow := RetryPolicy{Max: 5, Base: time.Hour, MaxDelay: time.Hour}
	start := time.Now()
	_, err = slow.Do(http.DefaultClient, func() (*http.Request, error) {
		builds++
		return http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/", nil)
	})
	if err == nil {
		t.Fatal("canceled request succeeded")
	}
	if builds != 1 || time.Since(start) > time.Second {
		t.Fatalf("canceled context did not stop the loop (builds=%d)", builds)
	}
}
