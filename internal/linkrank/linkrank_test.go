package linkrank

import (
	"math"
	"testing"
)

func TestPageRankCycleIsUniform(t *testing.T) {
	// A directed cycle: every node must have equal rank.
	n := 5
	g := &Graph{Out: make([][]int32, n)}
	for i := 0; i < n; i++ {
		g.Out[i] = []int32{int32((i + 1) % n)}
	}
	rank, err := PageRank(g, 0.85, 200, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rank {
		if math.Abs(r-0.2) > 1e-6 {
			t.Errorf("rank[%d] = %v, want 0.2", i, r)
		}
	}
}

func TestPageRankStarCenterWins(t *testing.T) {
	// Nodes 1..4 all link to node 0.
	g := &Graph{Out: [][]int32{{}, {0}, {0}, {0}, {0}}}
	rank, err := PageRank(g, 0.85, 200, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 5; i++ {
		if rank[0] <= rank[i] {
			t.Errorf("center rank %v not above leaf %v", rank[0], rank[i])
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := &Graph{Out: [][]int32{{1, 2}, {2}, {}, {0, 1, 2}}}
	rank, err := PageRank(g, 0.85, 200, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range rank {
		if r <= 0 {
			t.Errorf("non-positive rank %v", r)
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %v", sum)
	}
}

func TestPageRankValidation(t *testing.T) {
	if _, err := PageRank(&Graph{}, 0.85, 10, 1e-9); err == nil {
		t.Error("empty graph must error")
	}
	g := &Graph{Out: [][]int32{{}}}
	if _, err := PageRank(g, 0, 10, 1e-9); err == nil {
		t.Error("damping 0 must error")
	}
	if _, err := PageRank(g, 1, 10, 1e-9); err == nil {
		t.Error("damping 1 must error")
	}
}

func TestHITSBipartite(t *testing.T) {
	// Hubs 0,1 link to authorities 2,3; node 4 is isolated.
	g := &Graph{Out: [][]int32{{2, 3}, {2, 3}, {}, {}, {}}}
	hubs, auths, err := HITS(g, 50)
	if err != nil {
		t.Fatal(err)
	}
	if hubs[0] <= hubs[2] || hubs[1] <= hubs[3] {
		t.Errorf("hub scores wrong: %v", hubs)
	}
	if auths[2] <= auths[0] || auths[3] <= auths[1] {
		t.Errorf("authority scores wrong: %v", auths)
	}
	if auths[4] != 0 || hubs[4] != 0 {
		t.Errorf("isolated node should score 0: hub %v auth %v", hubs[4], auths[4])
	}
}

func TestHITSEmpty(t *testing.T) {
	if _, _, err := HITS(&Graph{}, 10); err == nil {
		t.Error("empty graph must error")
	}
}

func TestSyntheticGraph(t *testing.T) {
	// Three clear topics, 60 docs.
	topics := make([][]float64, 60)
	for d := range topics {
		theta := make([]float64, 3)
		theta[d%3] = 0.9
		theta[(d+1)%3] = 0.1
		topics[d] = theta
	}
	g, err := SyntheticGraph(topics, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 60 {
		t.Fatalf("nodes %d", g.NumNodes())
	}
	if g.NumEdges() < 60 {
		t.Errorf("suspiciously few edges: %d", g.NumEdges())
	}
	// Topical affinity: most edges stay within the dominant topic.
	within, total := 0, 0
	for d, out := range g.Out {
		for _, to := range out {
			total++
			if d%3 == int(to)%3 {
				within++
			}
		}
	}
	if total > 0 && float64(within)/float64(total) < 0.5 {
		t.Errorf("only %d/%d edges within topic", within, total)
	}
	// Determinism.
	g2, _ := SyntheticGraph(topics, 4, 7)
	if g2.NumEdges() != g.NumEdges() {
		t.Error("graph generation not deterministic")
	}
	if _, err := SyntheticGraph(nil, 4, 7); err == nil {
		t.Error("empty input must error")
	}
}

func TestGraphValidate(t *testing.T) {
	bad := &Graph{Out: [][]int32{{5}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range edge must fail validation")
	}
	loop := &Graph{Out: [][]int32{{0}}}
	if err := loop.Validate(); err == nil {
		t.Error("self-loop must fail validation")
	}
}
