// Package linkrank implements the Web link-analysis substrate the
// paper's system model names (§III-A: the engine "may employ any
// existing text retrieval mechanisms, like the classical vector space
// model, in conjunction with Web link analysis techniques" — citing
// PageRank and HITS). Enterprise document collections carry link
// structure too (cross-references, citations, intranet links), and the
// search engine may fold a static document prior into its ranking.
// TopPriv is agnostic to all of this — which these types help
// demonstrate: the engine's ranking function can change freely without
// touching the privacy layer.
package linkrank

import (
	"fmt"
	"math"
	"math/rand"
)

// Graph is a directed document graph: Out[d] lists the documents d
// links to. Nodes are dense indices 0..N-1.
type Graph struct {
	Out [][]int32
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Out) }

// NumEdges returns the total edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, out := range g.Out {
		n += len(out)
	}
	return n
}

// Validate checks all edges stay in range and self-loops are absent.
func (g *Graph) Validate() error {
	n := int32(len(g.Out))
	for d, out := range g.Out {
		for _, to := range out {
			if to < 0 || to >= n {
				return fmt.Errorf("linkrank: edge %d -> %d out of range", d, to)
			}
			if int(to) == d {
				return fmt.Errorf("linkrank: self-loop at %d", d)
			}
		}
	}
	return nil
}

// PageRank computes the stationary PageRank vector with damping factor
// d (typically 0.85) by power iteration, treating dangling nodes as
// linking to everything. It stops after maxIters sweeps or when the L1
// change drops below tol. The result sums to 1.
func PageRank(g *Graph, damping float64, maxIters int, tol float64) ([]float64, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("linkrank: empty graph")
	}
	if damping <= 0 || damping >= 1 {
		return nil, fmt.Errorf("linkrank: damping = %v, need (0,1)", damping)
	}
	if maxIters <= 0 {
		maxIters = 100
	}
	if tol <= 0 {
		tol = 1e-9
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	base := (1 - damping) / float64(n)
	for iter := 0; iter < maxIters; iter++ {
		dangling := 0.0
		for i := range next {
			next[i] = 0
		}
		for d, out := range g.Out {
			if len(out) == 0 {
				dangling += rank[d]
				continue
			}
			share := rank[d] / float64(len(out))
			for _, to := range out {
				next[to] += share
			}
		}
		danglingShare := dangling / float64(n)
		delta := 0.0
		for i := range next {
			v := base + damping*(next[i]+danglingShare)
			delta += math.Abs(v - rank[i])
			rank[i], next[i] = v, rank[i]
		}
		if delta < tol {
			break
		}
	}
	return rank, nil
}

// HITS computes hub and authority scores by mutual reinforcement with
// L2 normalization per iteration (Kleinberg). Both vectors are
// normalized to unit L2 norm.
func HITS(g *Graph, iters int) (hubs, auths []float64, err error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, nil, fmt.Errorf("linkrank: empty graph")
	}
	if iters <= 0 {
		iters = 50
	}
	hubs = make([]float64, n)
	auths = make([]float64, n)
	for i := range hubs {
		hubs[i] = 1
		auths[i] = 1
	}
	for iter := 0; iter < iters; iter++ {
		// auth(v) = Σ_{u -> v} hub(u)
		for i := range auths {
			auths[i] = 0
		}
		for u, out := range g.Out {
			for _, v := range out {
				auths[v] += hubs[u]
			}
		}
		normalize(auths)
		// hub(u) = Σ_{u -> v} auth(v)
		for u, out := range g.Out {
			h := 0.0
			for _, v := range out {
				h += auths[v]
			}
			hubs[u] = h
		}
		normalize(hubs)
	}
	return hubs, auths, nil
}

func normalize(v []float64) {
	sum := 0.0
	for _, x := range v {
		sum += x * x
	}
	if sum == 0 {
		return
	}
	inv := 1 / math.Sqrt(sum)
	for i := range v {
		v[i] *= inv
	}
}

// SyntheticGraph builds a citation-style link graph over documents with
// known topic mixtures: links attach preferentially (rich get richer)
// and mostly within topic (a document cites documents about its own
// subject). trueTopics[d] is document d's topic mixture; avgOut is the
// mean out-degree.
func SyntheticGraph(trueTopics [][]float64, avgOut int, seed int64) (*Graph, error) {
	n := len(trueTopics)
	if n == 0 {
		return nil, fmt.Errorf("linkrank: no documents")
	}
	if avgOut < 1 {
		avgOut = 3
	}
	rng := rand.New(rand.NewSource(seed))
	dominant := make([]int, n)
	for d, theta := range trueTopics {
		best := 0
		for t := range theta {
			if theta[t] > theta[best] {
				best = t
			}
		}
		dominant[d] = best
	}
	// Per-topic candidate pools.
	pools := map[int][]int32{}
	for d, t := range dominant {
		pools[t] = append(pools[t], int32(d))
	}
	inDegree := make([]int, n)
	g := &Graph{Out: make([][]int32, n)}
	for d := 0; d < n; d++ {
		outDeg := 1 + rng.Intn(2*avgOut-1)
		seen := map[int32]bool{}
		for e := 0; e < outDeg; e++ {
			var candidates []int32
			if rng.Float64() < 0.8 {
				candidates = pools[dominant[d]]
			}
			var to int32
			picked := false
			for attempt := 0; attempt < 10; attempt++ {
				if len(candidates) > 1 {
					to = candidates[rng.Intn(len(candidates))]
				} else {
					to = int32(rng.Intn(n))
				}
				// Preferential attachment: accept with probability
				// growing in the target's in-degree.
				if int(to) == d || seen[to] {
					continue
				}
				accept := (1.0 + float64(inDegree[to])) / (1.0 + float64(inDegree[to]) + 3.0)
				if rng.Float64() < accept || attempt == 9 {
					picked = true
					break
				}
			}
			if !picked || int(to) == d || seen[to] {
				continue
			}
			seen[to] = true
			g.Out[d] = append(g.Out[d], to)
			inDegree[to]++
		}
	}
	return g, nil
}
