package toppriv

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§V), plus the ablations called out in DESIGN.md §5 and
// micro-benchmarks for the hot paths. Quality metrics (exposure %,
// cycle length, TopPriv/PDX ratio, …) are attached to each benchmark
// via b.ReportMetric, so `go test -bench=. -benchmem` leaves a full
// paper-vs-measured record in its output.
//
// The benchmarks share one lazily-built environment sized between the
// unit tests and the full cmd/experiments run: big enough for the
// paper's shapes to be visible, small enough to regenerate everything
// in minutes.

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"toppriv/internal/adversary"
	"toppriv/internal/baseline"
	"toppriv/internal/belief"
	"toppriv/internal/core"
	"toppriv/internal/corpus"
	"toppriv/internal/experiment"
	"toppriv/internal/index"
	"toppriv/internal/lda"
	"toppriv/internal/linkrank"
	"toppriv/internal/telemetry"
	"toppriv/internal/vsm"
)

var (
	benchOnce sync.Once
	benchEnv  *experiment.Env
	benchErr  error
)

func getBenchEnv(b *testing.B) *experiment.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = experiment.NewEnv(experiment.EnvSpec{
			Seed:       1,
			NumDocs:    1000,
			NumTopics:  24,
			Ks:         []int{8, 16, 24, 32},
			NumQueries: 60,
			TrainIters: 100,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// midEngine returns the belief engine of the grid's mid-size model.
func midEngine(env *experiment.Env) *belief.Engine {
	ks := env.SortedKs()
	return env.Engines[ks[len(ks)/2]]
}

// --- Figures --------------------------------------------------------------

// BenchmarkFig2 regenerates Figure 2 (ε1 = 5%, ε2 sweep): exposure,
// mask, cycle length and generation time per model.
func BenchmarkFig2(b *testing.B) {
	env := getBenchEnv(b)
	var points []experiment.Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiment.Fig2(env, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSweep(b, points)
}

// BenchmarkFig3 regenerates Figure 3 (ε1 = ε2 sweep) with the |U| and
// max-rank panels.
func BenchmarkFig3(b *testing.B) {
	env := getBenchEnv(b)
	var points []experiment.Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiment.Fig3(env, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSweep(b, points)
	// Fig 3e/f: report the mean |U| and rank depth at the tightest
	// threshold for the largest model.
	ks := env.SortedKs()
	kMax := ks[len(ks)-1]
	for _, p := range points {
		if p.K == kMax && p.Eps1 == 0.005 {
			b.ReportMetric(p.USize, "Usize@0.5%")
			b.ReportMetric(p.MaxRank, "maxrank@0.5%")
		}
	}
}

func reportSweep(b *testing.B, points []experiment.Point) {
	b.Helper()
	var exp, mask, ups float64
	n := 0
	for _, p := range points {
		if p.Queries == 0 {
			continue
		}
		exp += p.Exposure
		mask += p.Mask
		ups += p.Upsilon
		n++
	}
	if n > 0 {
		b.ReportMetric(exp/float64(n)*100, "exposure%")
		b.ReportMetric(mask/float64(n)*100, "mask%")
		b.ReportMetric(ups/float64(n), "upsilon")
	}
}

// BenchmarkFig4 regenerates Figure 4: PDX exposure across expansion
// factors and models.
func BenchmarkFig4(b *testing.B) {
	env := getBenchEnv(b)
	var points []experiment.PDXPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiment.Fig4(env, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	var lo, hi float64
	var nlo, nhi int
	for _, p := range points {
		if p.Queries == 0 {
			continue
		}
		switch p.Expansion {
		case 2:
			lo += p.Exposure
			nlo++
		case 16:
			hi += p.Exposure
			nhi++
		}
	}
	if nlo > 0 {
		b.ReportMetric(lo/float64(nlo)*100, "pdx_exposure%@2x")
	}
	if nhi > 0 {
		b.ReportMetric(hi/float64(nhi)*100, "pdx_exposure%@16x")
	}
}

// BenchmarkFig5 regenerates Figure 5: the TopPriv/PDX exposure ratio at
// equal word budgets. Paper shape: ratio < 1, shrinking with υ.
func BenchmarkFig5(b *testing.B) {
	env := getBenchEnv(b)
	var points []experiment.RatioPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiment.Fig5(env, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	byUps := map[int][]float64{}
	for _, p := range points {
		if p.Queries == 0 || p.PDX == 0 {
			continue
		}
		byUps[p.Upsilon] = append(byUps[p.Upsilon], p.Ratio)
	}
	for _, ups := range experiment.DefaultUpsilons() {
		rs := byUps[ups]
		if len(rs) == 0 {
			continue
		}
		sum := 0.0
		for _, r := range rs {
			sum += r
		}
		b.ReportMetric(sum/float64(len(rs)), "ratio@ups"+itoa(ups))
	}
}

// BenchmarkFig6 regenerates Figure 6: LDA model size vs index size as
// the corpus grows.
func BenchmarkFig6(b *testing.B) {
	env := getBenchEnv(b)
	var points []experiment.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiment.Fig6(env, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(points) >= 2 {
		first, last := points[0], points[len(points)-1]
		idxGrowth := float64(last.IndexBytes) / float64(first.IndexBytes)
		modelGrowth := float64(last.ModelBytes) / float64(first.ModelBytes)
		b.ReportMetric(idxGrowth, "index_growth")
		b.ReportMetric(modelGrowth, "model_growth")
		b.ReportMetric(last.Saving*100, "saving%@max")
	}
}

// --- Tables ---------------------------------------------------------------

// BenchmarkTable2 regenerates Table II (sample topics of the default
// model).
func BenchmarkTable2(b *testing.B) {
	env := getBenchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table2(env, nil, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates Table III (one topic across model sizes).
func BenchmarkTable3(b *testing.B) {
	env := getBenchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table3(env, "medicine", 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates Table IV (undersized model) — this trains
// a tiny LDA model per iteration.
func BenchmarkTable4(b *testing.B) {
	env := getBenchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table4(env, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTablePIR regenerates the §II PIR-impracticality statistics.
func BenchmarkTablePIR(b *testing.B) {
	env := getBenchEnv(b)
	var rep experiment.PIRReport
	for i := 0; i < b.N; i++ {
		rep = experiment.PIRTable(env)
	}
	b.ReportMetric(rep.Blowup, "pir_blowup_x")
	b.ReportMetric(rep.MeanListLen, "mean_list_len")
}

// BenchmarkTableAttacks regenerates the §IV-D resilience table.
func BenchmarkTableAttacks(b *testing.B) {
	env := getBenchEnv(b)
	var rows []experiment.AttackRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.AttackTable(env, 0.05, 0.01, 6)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Attack == "coherence" {
			b.ReportMetric(r.Value, "coherence_"+r.Scheme)
		}
	}
}

// --- Ablations (DESIGN.md §5) ----------------------------------------------

// ablationRun measures mean exposure and cycle length for a parameter
// variant of the obfuscator over the bench workload.
func ablationRun(b *testing.B, params core.Params) {
	b.Helper()
	env := getBenchEnv(b)
	eng := midEngine(env)
	obf, err := core.NewObfuscator(eng, params)
	if err != nil {
		b.Fatal(err)
	}
	queries := env.AnalyzedQueries()
	var exposure, ups float64
	contributing := 0
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(9))
		exposure, ups = 0, 0
		contributing = 0
		for _, q := range queries {
			cyc, err := obf.Obfuscate(q, rng)
			if err != nil {
				b.Fatal(err)
			}
			ups += float64(cyc.Len())
			if len(cyc.Intention) == 0 {
				continue
			}
			exposure += cyc.Exposure
			contributing++
		}
	}
	if contributing > 0 {
		b.ReportMetric(exposure/float64(contributing)*100, "exposure%")
	}
	b.ReportMetric(ups/float64(len(queries)), "upsilon")
}

// BenchmarkAblationBaseline is the reference configuration the other
// ablations compare against.
func BenchmarkAblationBaseline(b *testing.B) {
	ablationRun(b, core.Params{Eps1: 0.05, Eps2: 0.01})
}

// BenchmarkAblationNoBacktrack disables the Step 3(c) ineffective-topic
// test: every tentative ghost is kept even if it raises exposure.
func BenchmarkAblationNoBacktrack(b *testing.B) {
	ablationRun(b, core.Params{Eps1: 0.05, Eps2: 0.01, NoBacktrack: true})
}

// BenchmarkAblationUniformWords replaces the Step 3(b) topical word
// bias with uniform vocabulary sampling (TrackMeNot-style ghosts).
func BenchmarkAblationUniformWords(b *testing.B) {
	ablationRun(b, core.Params{Eps1: 0.05, Eps2: 0.01, UniformWords: true})
}

// BenchmarkAblationFixedLen pins every ghost to a fixed short length
// instead of multiples of |q_u|.
func BenchmarkAblationFixedLen(b *testing.B) {
	ablationRun(b, core.Params{Eps1: 0.05, Eps2: 0.01, FixedGhostLen: 4})
}

// --- Micro-benchmarks -------------------------------------------------------

// BenchmarkObfuscateQuery is the per-query client overhead of Figures
// 2d/3d: one full ghost-generation cycle.
func BenchmarkObfuscateQuery(b *testing.B) {
	env := getBenchEnv(b)
	eng := midEngine(env)
	obf, err := core.NewObfuscator(eng, core.Params{Eps1: 0.05, Eps2: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	queries := env.AnalyzedQueries()
	rng := rand.New(rand.NewSource(10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := obf.Obfuscate(queries[i%len(queries)], rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInference measures one LDA posterior estimate Pr(t|q).
func BenchmarkInference(b *testing.B) {
	env := getBenchEnv(b)
	eng := midEngine(env)
	queries := env.AnalyzedQueries()
	rng := rand.New(rand.NewSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Posterior(queries[i%len(queries)], rng)
	}
}

// BenchmarkInferenceIters sweeps the fold-in Gibbs budget — the
// accuracy/latency trade of the inference substrate.
func BenchmarkInferenceIters(b *testing.B) {
	env := getBenchEnv(b)
	ks := env.SortedKs()
	m := env.Models[ks[len(ks)/2]]
	queries := env.AnalyzedQueries()
	for _, iters := range []int{10, 40, 160} {
		b.Run(itoa(iters), func(b *testing.B) {
			inf, err := lda.NewInferencer(m, lda.InferSpec{Iterations: iters, Samples: iters / 4})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(12))
			for i := 0; i < b.N; i++ {
				inf.PosteriorTerms(queries[i%len(queries)], rng)
			}
		})
	}
}

// BenchmarkSearch measures top-10 engine throughput for both scorers
// under every execution strategy. The per-op docs_scored metric is
// the pruning evidence: the pruned modes fully score a fraction of
// the documents the exhaustive oracle touches, at identical results;
// block-max WAND additionally reports how many candidates died on a
// per-block bound alone.
func BenchmarkSearch(b *testing.B) {
	env := getBenchEnv(b)
	queries := env.AnalyzedQueries()
	for _, scoring := range []vsm.Scoring{vsm.Cosine, vsm.BM25} {
		engine, err := vsm.NewEngine(env.Index, env.An, scoring)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []vsm.ExecMode{vsm.ExecMaxScore, vsm.ExecBlockMax, vsm.ExecExhaustive} {
			b.Run(scoring.String()+"/"+mode.String(), func(b *testing.B) {
				var stats vsm.ExecStats
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					engine.SearchTermsExec(queries[i%len(queries)], 10, nil, mode, &stats)
				}
				b.ReportMetric(float64(stats.DocsScored)/float64(b.N), "docs_scored/op")
				b.ReportMetric(float64(stats.DocsPruned)/float64(b.N), "docs_pruned/op")
				if mode == vsm.ExecBlockMax {
					b.ReportMetric(float64(stats.BlockSkips)/float64(b.N), "block_skips/op")
				}
			})
		}
	}
}

// BenchmarkSearchInstrumented is BenchmarkSearch with telemetry wired
// on: a live registry, latency and phase histograms, work-counter
// aggregates and the trace ring all updating on every query. Its rows
// sit next to BenchmarkSearch's in BENCH_search.json, so the committed
// baseline records the instrumentation overhead explicitly and the
// benchjson gate (prefix "BenchmarkSearch") keeps both from
// regressing. The cost of enabling is a near-constant ~1-2µs per
// query, dominated by the six clock reads that bound the four phases;
// the histogram and counter updates are a handful of atomic adds.
// Telemetry stays off by default, so BenchmarkSearch itself is the
// proof the uninstrumented path did not pay for the feature.
func BenchmarkSearchInstrumented(b *testing.B) {
	env := getBenchEnv(b)
	queries := env.AnalyzedQueries()
	for _, scoring := range []vsm.Scoring{vsm.Cosine, vsm.BM25} {
		engine, err := vsm.NewEngine(env.Index, env.An, scoring)
		if err != nil {
			b.Fatal(err)
		}
		engine.EnableMetrics(telemetry.NewRegistry(), telemetry.NewTraceRing(telemetry.DefaultTraceCap))
		for _, mode := range []vsm.ExecMode{vsm.ExecMaxScore, vsm.ExecBlockMax, vsm.ExecExhaustive} {
			b.Run(scoring.String()+"/"+mode.String(), func(b *testing.B) {
				var stats vsm.ExecStats
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					engine.SearchTermsExec(queries[i%len(queries)], 10, nil, mode, &stats)
				}
				b.ReportMetric(float64(stats.DocsScored)/float64(b.N), "docs_scored/op")
			})
		}
	}
}

// BenchmarkSearchBatch measures cycle-at-a-time batch execution: an
// 8-member obfuscation cycle (generated by the TopPriv obfuscator, so
// its members share topics and terms the way real ghost cycles do)
// submitted through SearchBatch in one engine pass versus the same
// eight queries run sequentially in the default (auto) mode. The batch
// plan shares term resolution, postings fetches and the per-posting
// impact computation across members; the sequential baseline pays each
// query's full cost. The regression gate covers both rows.
func BenchmarkSearchBatch(b *testing.B) {
	env := getBenchEnv(b)
	eng := midEngine(env)
	obf, err := core.NewObfuscator(eng, core.Params{Eps1: 0.05, Eps2: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	// Assemble a deterministic 8-member cycle: obfuscate workload
	// queries until eight cycle members (the genuine query among its
	// ghosts) are collected.
	rng := rand.New(rand.NewSource(53))
	queries := env.AnalyzedQueries()
	var cycle [][]string
	for qi := 0; len(cycle) < 8; qi++ {
		cyc, err := obf.Obfuscate(queries[qi%len(queries)], rng)
		if err != nil {
			b.Fatal(err)
		}
		cycle = append(cycle, cyc.Queries...)
	}
	cycle = cycle[:8]
	ctx := context.Background()
	for _, scoring := range []vsm.Scoring{vsm.Cosine, vsm.BM25} {
		engine, err := vsm.NewEngine(env.Index, env.An, scoring)
		if err != nil {
			b.Fatal(err)
		}
		reqs := make([]vsm.Request, len(cycle))
		for i, q := range cycle {
			reqs[i] = vsm.Request{Terms: q, K: 10}
		}
		b.Run(scoring.String()+"/batch8", func(b *testing.B) {
			var scored int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resps, err := engine.SearchBatch(ctx, reqs)
				if err != nil {
					b.Fatal(err)
				}
				scored = 0
				for j := range resps {
					scored += resps[j].Stats.DocsScored
				}
			}
			b.ReportMetric(float64(scored), "docs_scored/op")
		})
		b.Run(scoring.String()+"/sequential8", func(b *testing.B) {
			var stats vsm.ExecStats
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats = vsm.ExecStats{}
				for _, q := range cycle {
					engine.SearchTermsExec(q, 10, nil, vsm.ExecAuto, &stats)
				}
			}
			b.ReportMetric(float64(stats.DocsScored), "docs_scored/op")
		})
	}
}

// BenchmarkIndexSize records the memory footprint of the
// block-compressed postings on the bench corpus: exact postings bytes
// per document (the index_bytes/doc metric the CI gate hard-fails on
// when it grows >10%), and the compression ratio against the
// uncompressed 8-byte ⟨int32 doc, int32 tf⟩ posting representation.
func BenchmarkIndexSize(b *testing.B) {
	env := getBenchEnv(b)
	var s index.Stats
	for i := 0; i < b.N; i++ {
		s = env.Index.ComputeStats()
	}
	b.ReportMetric(s.BytesPerDoc, "index_bytes/doc")
	b.ReportMetric(float64(s.PostingsBytes), "postings_bytes")
	if s.PostingsBytes > 0 {
		b.ReportMetric(float64(8*s.NumPostings)/float64(s.PostingsBytes), "compression_x")
	}
}

// BenchmarkIndexBuild measures inverted-index construction.
func BenchmarkIndexBuild(b *testing.B) {
	env := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := index.Build(env.Corpus); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLDATrain measures Gibbs training on a small corpus (per
// sweep cost scales linearly in tokens × K).
func BenchmarkLDATrain(b *testing.B) {
	c, _, err := corpus.Synthesize(corpus.GenSpec{
		Seed: 13, NumDocs: 200, NumTopics: 8, DocLenMin: 40, DocLenMax: 80,
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lda.Train(c, lda.TrainSpec{NumTopics: 8, Iterations: 20, Seed: 13}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoherenceAttack measures the adversary's per-cycle cost.
func BenchmarkCoherenceAttack(b *testing.B) {
	env := getBenchEnv(b)
	eng := midEngine(env)
	obf, err := core.NewObfuscator(eng, core.Params{Eps1: 0.05, Eps2: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	queries := env.AnalyzedQueries()
	var cycles [][][]string
	for _, q := range queries[:20] {
		cyc, err := obf.Obfuscate(q, rng)
		if err != nil {
			b.Fatal(err)
		}
		cycles = append(cycles, cyc.Queries)
	}
	attack := &adversary.CoherenceAttack{Eng: eng}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attack.GuessUser(cycles[i%len(cycles)], rng)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Extended-system benchmarks ---------------------------------------------

// BenchmarkTableQuality regenerates the retrieval-fidelity comparison:
// TopPriv/PDX preserve the exact results; canonical substitution
// degrades them.
func BenchmarkTableQuality(b *testing.B) {
	env := getBenchEnv(b)
	var rows []experiment.QualityRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RetrievalQuality(env, 10, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Overlap, "overlap_"+r.Scheme)
	}
}

// BenchmarkIntersectionAttack measures cross-cycle frequency analysis
// against independent vs sticky sessions.
func BenchmarkIntersectionAttack(b *testing.B) {
	env := getBenchEnv(b)
	eng := midEngine(env)
	obf, err := core.NewObfuscator(eng, core.Params{Eps1: 0.05, Eps2: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	queries := env.AnalyzedQueries()
	// One synthetic "user" issuing 8 re-phrasings of the same query
	// (a stable interest), the scenario intersection analysis exploits.
	var indep, sticky [][][]string
	sess, err := core.NewSession(obf)
	if err != nil {
		b.Fatal(err)
	}
	base := queries[0]
	for len(base) < 14 {
		base = append(base, queries[0]...)
	}
	for i := 0; i < 8; i++ {
		q := base[i%4 : i%4+10]
		ci, err := obf.Obfuscate(q, rng)
		if err != nil {
			b.Fatal(err)
		}
		indep = append(indep, ci.Queries)
		cs, err := sess.Obfuscate(q, rng)
		if err != nil {
			b.Fatal(err)
		}
		sticky = append(sticky, cs.Queries)
	}
	attack := &adversary.IntersectionAttack{Eng: eng, TopM: 5}
	var setIndep, setSticky []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		setIndep = attack.RecurrentTopics(indep, 0.8, rng)
		setSticky = attack.RecurrentTopics(sticky, 0.8, rng)
	}
	b.ReportMetric(float64(len(setIndep)), "confusion_independent")
	b.ReportMetric(float64(len(setSticky)), "confusion_sticky")
}

// BenchmarkLDATrainParallel compares AD-LDA speedup over sequential
// Gibbs on the same corpus.
func BenchmarkLDATrainParallel(b *testing.B) {
	// Sized so per-sweep sampling work (tokens × K) dominates the
	// per-sweep merge cost (K × V × workers). Speedup requires real
	// cores: on a single-CPU host the worker variants only show the
	// coordination overhead.
	c, _, err := corpus.Synthesize(corpus.GenSpec{
		Seed: 41, NumDocs: 1500, NumTopics: 16, DocLenMin: 80, DocLenMax: 140,
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(itoa(workers)+"workers", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lda.TrainParallel(c, lda.TrainSpec{NumTopics: 16, Iterations: 10, Seed: 41}, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPageRank measures the link-analysis substrate on a synthetic
// citation graph at the bench corpus scale.
func BenchmarkPageRank(b *testing.B) {
	env := getBenchEnv(b)
	topics := make([][]float64, env.Corpus.NumDocs())
	for d := range topics {
		topics[d] = env.Corpus.Docs[d].TrueTopics
	}
	g, err := linkrank.SyntheticGraph(topics, 4, 43)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linkrank.PageRank(g, 0.85, 100, 1e-10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusSample measures the §V-A future-work reduction.
func BenchmarkCorpusSample(b *testing.B) {
	env := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := corpus.Sample(env.Corpus, corpus.SampleSpec{
			DocFraction: 0.5, TopWordFraction: 0.7, Seed: 47,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCanonicalSubstitute measures the Murugesan–Clifton baseline's
// runtime mapping step.
func BenchmarkCanonicalSubstitute(b *testing.B) {
	env := getBenchEnv(b)
	eng := midEngine(env)
	canon, err := baseline.NewCanonical(eng, 4, 8, 49)
	if err != nil {
		b.Fatal(err)
	}
	queries := env.AnalyzedQueries()
	rng := rand.New(rand.NewSource(50))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := canon.Substitute(queries[i%len(queries)], rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableEffectiveness regenerates the IR-effectiveness table:
// TopPriv matches the unprotected engine exactly; canonical
// substitution loses MAP/nDCG.
func BenchmarkTableEffectiveness(b *testing.B) {
	env := getBenchEnv(b)
	var rows []experiment.EffectivenessRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.Effectiveness(env, 19)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Metrics.MAP, "MAP_"+r.Scheme)
	}
}

// BenchmarkAblationMimicProfile measures the learned-distinguisher
// countermeasure's cost: depth-profile ghost sampling instead of plain
// Φ-biased sampling.
func BenchmarkAblationMimicProfile(b *testing.B) {
	ablationRun(b, core.Params{Eps1: 0.05, Eps2: 0.01, MimicProfile: true})
}
