package toppriv

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"toppriv/internal/search"
)

func TestServiceLive(t *testing.T) {
	svc, err := NewService(ServiceSpec{
		Seed: 17,
		Corpus: CorpusSpec{
			NumDocs:   120,
			NumTopics: 6,
			DocLenMin: 40,
			DocLenMax: 70,
		},
		TrainIters:    40,
		Live:          true,
		SealThreshold: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if !svc.Live() || svc.Store() == nil {
		t.Fatal("service should be live")
	}
	if got := svc.Store().NumDocs(); got != 120 {
		t.Fatalf("store seeded with %d docs, want 120", got)
	}
	if s := svc.Staleness(); s != 0 {
		t.Fatalf("fresh staleness = %v", s)
	}

	// The searcher path works against the store, titles included.
	q := svc.topicQueryText(0, 4)
	hits := svc.Search(q, 5)
	if len(hits) == 0 || hits[0].Title == "" {
		t.Fatalf("live search returned %+v", hits)
	}

	// Adds are searchable at once, fold-in posteriors recorded, and
	// staleness moves.
	ids, err := svc.AddDocuments(Document{Title: "drift", Text: svc.Corpus.Docs[3].Text})
	if err != nil {
		t.Fatal(err)
	}
	theta, ok := svc.FoldedTopics(ids[0])
	if !ok || len(theta) != svc.Model.K {
		t.Fatalf("fold-in posterior missing: %v %v", theta, ok)
	}
	sum := 0.0
	for _, p := range theta {
		sum += p
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("fold-in posterior not a distribution: sum %v", sum)
	}
	if svc.Staleness() <= 0 {
		t.Fatal("staleness should grow after an add")
	}
	if _, ok := svc.FoldedTopics(0); ok {
		t.Fatal("training-corpus docs have no fold-in posterior")
	}

	if err := svc.DeleteDocument(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, ok := svc.FoldedTopics(ids[0]); ok {
		t.Fatal("deleted doc still has a fold-in posterior")
	}

	// The handler exposes the mutation endpoints in live mode.
	handler, err := svc.Handler()
	if err != nil {
		t.Fatal(err)
	}
	if !handler.Live() {
		t.Fatal("live service handler should be live")
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	body, _ := json.Marshal(search.IndexRequest{Docs: []Document{{Title: "via http", Text: svc.Corpus.Docs[5].Text}}})
	resp, err := http.Post(ts.URL+"/index", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /index: %d", resp.StatusCode)
	}
}

func TestServiceLiveValidation(t *testing.T) {
	if _, err := NewService(ServiceSpec{
		Seed:            3,
		Corpus:          CorpusSpec{NumDocs: 40, NumTopics: 4},
		TrainIters:      5,
		Live:            true,
		LinkPriorWeight: 0.5,
	}); err == nil {
		t.Fatal("Live + LinkPriorWeight should be rejected")
	}
	svc := getService(t)
	if svc.Live() {
		t.Fatal("default service should not be live")
	}
	if _, err := svc.AddDocuments(Document{Text: "x"}); err == nil {
		t.Fatal("AddDocuments on immutable service should error")
	}
	if err := svc.DeleteDocument(0); err == nil {
		t.Fatal("DeleteDocument on immutable service should error")
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close on immutable service: %v", err)
	}
}
