module toppriv

go 1.24
