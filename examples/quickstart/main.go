// Quickstart: build a small enterprise search service, issue the
// paper's §IV-C demonstration query ("u.s. army, abrams tank m-1,
// bradley fighting vehicle, apache helicopter ah-64, patriot missile,
// blackhawk helicopter" — TREC topic 91), and show how TopPriv hides
// its topical intention behind semantically coherent ghost queries on
// unrelated topics (finance, education, …).
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"toppriv"
)

func main() {
	log.SetFlags(0)

	fmt.Println("building service (synthetic corpus + LDA model)…")
	svc, err := toppriv.NewService(toppriv.ServiceSpec{
		Seed: 1,
		Corpus: toppriv.CorpusSpec{
			NumDocs:   800,
			NumTopics: 12,
		},
		TrainIters: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d docs, %d terms, %d topics\n\n",
		svc.Corpus.NumDocs(), svc.Corpus.VocabSize(), svc.Model.K)

	// The paper's demonstration query (TREC topic 91).
	userQuery := "u.s. army abrams tank m-1 bradley fighting vehicle apache helicopter ah-64 patriot missile blackhawk helicopter"
	fmt.Printf("user query: %s\n\n", userQuery)

	// 1. Plain search — what an unprotected user gets.
	hits := svc.Search(userQuery, 5)
	fmt.Println("plain search results:")
	for i, h := range hits {
		fmt.Printf("  %d. doc %-5d %.4f  %s\n", i+1, h.Doc, h.Score, h.Title)
	}

	// 2. What the query reveals: its topical boost profile.
	rng := rand.New(rand.NewSource(7))
	terms := svc.AnalyzeQuery(userQuery)
	boost := svc.Beliefs.Boost(terms, rng)
	fmt.Println("\ntopic boosts of the raw query (top 3):")
	printTopBoosts(svc, boost, 3)

	// 3. Obfuscate. ε1/ε2 scaled to this model size.
	obf, err := svc.NewObfuscator(toppriv.PrivacyParams{Eps1: 0.04, Eps2: 0.015})
	if err != nil {
		log.Fatal(err)
	}
	cycle, err := obf.Obfuscate(terms, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTopPriv cycle: %d queries (user query hidden at position %d)\n",
		cycle.Len(), cycle.UserIndex)
	for i, q := range cycle.Queries {
		tag := "ghost"
		if i == cycle.UserIndex {
			tag = "USER "
		}
		fmt.Printf("  [%s] %s\n", tag, strings.Join(q, " "))
	}
	fmt.Printf("\nintention topics |U| = %d, exposure after mixing = %.2f%% (ε2 = 1.5%%), satisfied = %v\n",
		len(cycle.Intention), cycle.Exposure*100, cycle.Satisfied)

	fmt.Println("\ncycle topic boosts as the adversary sees them (top 3):")
	printTopBoosts(svc, cycle.Boost, 3)
	fmt.Println("\nthe genuine (military) topic no longer tops the list — the intention is obfuscated.")
}

// printTopBoosts shows the n most boosted topics with a few head words
// each, so the output reads like the paper's examples.
func printTopBoosts(svc *toppriv.Service, boost []float64, n int) {
	type tb struct {
		topic int
		b     float64
	}
	tbs := make([]tb, len(boost))
	for t, b := range boost {
		tbs[t] = tb{t, b}
	}
	for i := 0; i < n && i < len(tbs); i++ {
		best := i
		for j := i + 1; j < len(tbs); j++ {
			if tbs[j].b > tbs[best].b {
				best = j
			}
		}
		tbs[i], tbs[best] = tbs[best], tbs[i]
		words := make([]string, 0, 5)
		for _, tw := range svc.Model.TopWords(tbs[i].topic, 5) {
			words = append(words, tw.Term)
		}
		fmt.Printf("  topic %2d  boost %+.2f%%  [%s]\n",
			tbs[i].topic, tbs[i].b*100, strings.Join(words, " "))
	}
}
