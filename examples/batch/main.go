// Batch search: the Request/Response query API and cycle-at-a-time
// execution. A TopPriv obfuscation cycle's υ queries are submitted
// together — locally through Service.SearchBatch (one engine pass
// sharing term resolution and postings across the cycle) and over HTTP
// through Client.SearchCycle (one POST /search/batch round-trip) — and
// the server's query log still records every cycle member separately,
// so the adversary's view is identical to query-by-query submission.
//
// Run:
//
//	go run ./examples/batch
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"strings"

	"toppriv"
)

func main() {
	log.SetFlags(0)

	fmt.Println("building service (synthetic corpus + LDA model)…")
	svc, err := toppriv.NewService(toppriv.ServiceSpec{
		Seed:       1,
		Corpus:     toppriv.CorpusSpec{NumDocs: 800, NumTopics: 12},
		TrainIters: 100,
	})
	if err != nil {
		log.Fatal(err)
	}

	userQuery := "u.s. army abrams tank m-1 bradley fighting vehicle apache helicopter"
	obf, err := svc.NewObfuscator(toppriv.PrivacyParams{Eps1: 0.04, Eps2: 0.015})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	cycle, err := obf.Obfuscate(svc.AnalyzeQuery(userQuery), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cycle: %d queries (genuine query at position %d)\n\n", cycle.Len(), cycle.UserIndex)

	// 1. The whole cycle through the engine in one batch: shared term
	// resolution, shared postings traversal, per-member stats.
	ctx := context.Background()
	reqs := make([]toppriv.Request, cycle.Len())
	for i, q := range cycle.Queries {
		reqs[i] = toppriv.Request{Terms: q, K: 5}
	}
	resps, err := svc.SearchBatch(ctx, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("local SearchBatch — one engine pass for the whole cycle:")
	for i, resp := range resps {
		tag := "ghost"
		if i == cycle.UserIndex {
			tag = "USER "
		}
		top := "(no hits)"
		if len(resp.Hits) > 0 {
			top = fmt.Sprintf("top doc %d (%.4f)", resp.Hits[0].Doc, resp.Hits[0].Score)
		}
		fmt.Printf("  [%s] %-28s %s  docs_scored=%d\n",
			tag, ellipsis(strings.Join(cycle.Queries[i], " "), 28), top, resp.Stats.DocsScored)
	}

	// 2. The same cycle over HTTP in one round-trip. The query log —
	// the adversary's artifact — still holds one entry per member.
	handler, err := svc.Handler()
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	client, err := svc.NewClient(ts.URL, obf, 42)
	if err != nil {
		log.Fatal(err)
	}
	hits, err := client.SearchCycle(ctx, userQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHTTP SearchCycle — one POST /search/batch, genuine results only:\n")
	for i, h := range hits {
		fmt.Printf("  %d. doc %-5d %.4f  %s\n", i+1, h.Doc, h.Score, h.Title)
	}
	qlog := handler.QueryLog()
	fmt.Printf("\nserver query log after the batch: %d entries for a %d-query cycle —\n"+
		"the adversary sees the same per-member log as query-by-query submission.\n",
		len(qlog), client.LastCycle().Len())
}

func ellipsis(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
