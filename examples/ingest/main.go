// Ingest: runs the TopPriv pipeline over documents ingested from the
// TREC SGML format (the markup of the real Wall Street Journal
// collection the paper evaluates on) instead of the synthetic corpus.
// The sample here is embedded; point ParseDocuments at the licensed WSJ
// files to reproduce the paper on the original data.
//
// Run:
//
//	go run ./examples/ingest
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"toppriv"

	"toppriv/internal/trec"
)

// A miniature WSJ-style collection: three tiny beats (markets, defense,
// medicine), five articles each.
const sampleSGML = `
<DOC>
<DOCNO> WSJ880101-0001 </DOCNO>
<HL> Stocks Rally as Dow Industrials Gain </HL>
<TEXT>
The Dow Jones industrial average rose sharply in heavy trading as
investors returned to the stock market. Volume on the exchange was
strong and the composite index closed higher. Brokers said the rally
reflected renewed confidence in equities and securities.
</TEXT>
</DOC>
<DOC>
<DOCNO> WSJ880102-0002 </DOCNO>
<HL> Investors Shrug Off Rate Worries </HL>
<TEXT>
Stock prices advanced again as investors shrugged off interest rate
worries. Trading volume rose and the index of market breadth improved.
Portfolio managers said dividends and earnings support the rally in
shares and securities markets.
</TEXT>
</DOC>
<DOC>
<DOCNO> WSJ880103-0003 </DOCNO>
<HL> Army Expands Apache Helicopter Program </HL>
<TEXT>
The Army said it will expand its Apache helicopter program and order
more AH-64 aircraft. The missile systems and radar for the helicopter
come from several defense contractors. Pentagon officials praised the
weapons program and its combat record.
</TEXT>
</DOC>
<DOC>
<DOCNO> WSJ880104-0004 </DOCNO>
<HL> Pentagon Reviews Tank Acquisition </HL>
<TEXT>
The Pentagon is reviewing acquisition of the Abrams tank and other
armor. Army officials defended the weapons budget, citing combat
readiness. Defense analysts expect missile and artillery spending to
rise.
</TEXT>
</DOC>
<DOC>
<DOCNO> WSJ880105-0005 </DOCNO>
<HL> New Drug Shows Promise Against Virus </HL>
<TEXT>
Researchers said a new drug shows promise against the virus in early
clinical trials. Patients tolerated the treatment well, doctors said,
and blood tests showed improvement. The disease affects thousands of
patients and hospitals are expanding testing.
</TEXT>
</DOC>
<DOC>
<DOCNO> WSJ880106-0006 </DOCNO>
<HL> Hospitals Expand Cancer Screening </HL>
<TEXT>
Hospitals are expanding cancer screening programs as researchers
report progress in treatment. Doctors said early diagnosis improves
patient outcomes, and medical schools are training more specialists in
the disease.
</TEXT>
</DOC>
`

func main() {
	log.SetFlags(0)

	docs, err := trec.ParseDocuments(strings.NewReader(sampleSGML))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d TREC SGML documents\n", len(docs))
	for _, d := range docs[:3] {
		fmt.Printf("  %s — %q\n", d.Title, truncate(d.Text, 60))
	}

	svc, err := toppriv.NewService(toppriv.ServiceSpec{
		Seed:       29,
		Documents:  docs,
		NumTopics:  3,
		TrainIters: 60,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nindexed: %d docs, %d terms; topic model K=%d\n",
		svc.Corpus.NumDocs(), svc.Corpus.VocabSize(), svc.Model.K)
	for t := 0; t < svc.Model.K; t++ {
		var words []string
		for _, tw := range svc.Model.TopWords(t, 6) {
			words = append(words, tw.Term)
		}
		fmt.Printf("  topic %d: %s\n", t, strings.Join(words, " "))
	}

	// Search and obfuscate exactly as with the synthetic corpus. Tiny
	// corpora support only loose thresholds; real WSJ-scale data uses
	// the paper's defaults.
	query := "apache helicopter missile army"
	hits := svc.Search(query, 3)
	fmt.Printf("\nsearch %q:\n", query)
	for i, h := range hits {
		fmt.Printf("  %d. %.3f  %s\n", i+1, h.Score, h.Title)
	}

	obf, err := svc.NewObfuscator(toppriv.PrivacyParams{Eps1: 0.03, Eps2: 0.03})
	if err != nil {
		log.Fatal(err)
	}
	cyc, err := obf.Obfuscate(svc.AnalyzeQuery(query), rand.New(rand.NewSource(31)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nobfuscated into %d queries (|U| = %d, exposure %.1f%%)\n",
		cyc.Len(), len(cyc.Intention), cyc.Exposure*100)
	for i, q := range cyc.Queries {
		tag := "ghost"
		if i == cyc.UserIndex {
			tag = "USER "
		}
		fmt.Printf("  [%s] %s\n", tag, strings.Join(q, " "))
	}
	if len(cyc.Intention) == 0 {
		fmt.Println("\nnote: at this toy scale no topic clears ε1, so no ghosts are needed —")
		fmt.Println("the paper assumes a corpus of at least a few dozen topics (§IV-B);")
		fmt.Println("ingest the real WSJ collection to see full obfuscation on TREC data.")
	}
}

func truncate(s string, n int) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
