// Enterprise: the full Fig. 1 deployment in one process — an HTTP
// search server hosting the unmodified engine, and a trusted client
// that obfuscates every user query. It then plays the adversary: it
// inspects the server-side query log (all the search engine ever
// retains) and shows that (a) the user gets exactly the results of her
// genuine queries, and (b) the log's topical profile no longer exposes
// what she searched for.
//
// This mirrors the paper's motivating scenario: a commercial landlord
// provides searchable databases to tenants and wants to be unable to
// tell what topics they research.
//
// Run:
//
//	go run ./examples/enterprise
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"strings"

	"toppriv"

	"toppriv/internal/belief"
)

func main() {
	log.SetFlags(0)

	fmt.Println("building enterprise service…")
	svc, err := toppriv.NewService(toppriv.ServiceSpec{
		Seed: 3,
		Corpus: toppriv.CorpusSpec{
			NumDocs:   1200,
			NumTopics: 24,
		},
		TrainIters: 100,
	})
	if err != nil {
		log.Fatal(err)
	}

	handler, err := svc.Handler()
	if err != nil {
		log.Fatal(err)
	}
	server := httptest.NewServer(handler)
	defer server.Close()
	fmt.Printf("search server at %s (%d docs)\n\n", server.URL, svc.Corpus.NumDocs())

	obf, err := svc.NewObfuscator(toppriv.PrivacyParams{Eps1: 0.04, Eps2: 0.015})
	if err != nil {
		log.Fatal(err)
	}
	client, err := svc.NewClient(server.URL, obf, 99)
	if err != nil {
		log.Fatal(err)
	}

	// A tenant researches chemical recipes (the paper's §I scenario).
	sessions := []string{
		"chemical compounds solvent ammonia chlorine synthetic catalyst",
		"polymer resin plastics ethylene monomer",
		"laboratory reagent formula toxic emissions",
	}

	fmt.Println("tenant session (each query privately searched):")
	for _, q := range sessions {
		hits, err := client.Search(q)
		if err != nil {
			log.Fatal(err)
		}
		plain := svc.Search(q, 10)
		match := len(hits) == len(plain)
		for i := range hits {
			if i < len(plain) && hits[i].Doc != plain[i].Doc {
				match = false
			}
		}
		cyc := client.LastCycle()
		fmt.Printf("  %-60q -> %d hits (identical to plain search: %v), cycle of %d queries\n",
			truncate(q, 58), len(hits), match, cyc.Len())
	}

	// Now the landlord (curious adversary) examines the query log.
	logEntries := handler.QueryLog()
	fmt.Printf("\nserver-side query log holds %d queries (tenant issued %d):\n",
		len(logEntries), len(sessions))
	for _, e := range logEntries {
		fmt.Printf("  %2d: %s\n", e.Seq, truncate(e.Query, 88))
	}

	// Aggregate topical profile of the log, as the adversary would
	// compute it with the same LDA model.
	rng := rand.New(rand.NewSource(1))
	var cycle [][]string
	for _, e := range logEntries {
		cycle = append(cycle, strings.Fields(e.Query))
	}
	boost := svc.Beliefs.CycleBoost(cycle, rng)
	fmt.Println("\nadversary's topical read of the whole log (top 5 boosted topics):")
	order := topOrder(boost, 5)
	chemTopic := -1
	for rank, t := range order {
		words := headWords(svc.Model, t, 5)
		fmt.Printf("  #%d topic %2d boost %+.2f%%  [%s]\n", rank+1, t, boost[t]*100, words)
		if strings.Contains(words, "chemic") || strings.Contains(words, "polym") {
			chemTopic = rank
		}
	}
	if chemTopic < 0 {
		fmt.Println("\nthe chemicals topic is not among the top boosted topics — intention obfuscated.")
	} else {
		fmt.Printf("\nchemicals-like topic shows at rank %d among decoys — plausible deniability maintained.\n", chemTopic+1)
	}

	// For contrast: the same log WITHOUT obfuscation.
	var bare [][]string
	for _, q := range sessions {
		bare = append(bare, svc.AnalyzeQuery(q))
	}
	bareBoost := svc.Beliefs.CycleBoost(bare, rng)
	u := belief.Intention(bareBoost, 0.04)
	fmt.Printf("\nwithout TopPriv the log pins the intention to %d topic(s) with exposure %.1f%%.\n",
		len(u), belief.Exposure(bareBoost, u)*100)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

func topOrder(boost []float64, n int) []int {
	idx := make([]int, len(boost))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n && i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if boost[idx[j]] > boost[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	if n < len(idx) {
		idx = idx[:n]
	}
	return idx
}

func headWords(m *toppriv.Model, t, n int) string {
	var words []string
	for _, tw := range m.TopWords(t, n) {
		words = append(words, tw.Term)
	}
	return strings.Join(words, " ")
}
