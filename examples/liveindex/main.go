// Example liveindex demonstrates the segmented live index: incremental
// ingestion into the memtable, sealing into segments, tombstone
// deletes, background compaction, and persistence — the machinery that
// lets searchd serve queries while its corpus changes underneath it.
//
// Run with:
//
//	go run ./examples/liveindex
package main

import (
	"fmt"
	"log"
	"os"

	"toppriv/internal/corpus"
	"toppriv/internal/segment"
	"toppriv/internal/textproc"
)

func main() {
	log.SetFlags(0)

	// Synthesize a small corpus to feed in batches.
	an := textproc.NewAnalyzer()
	c, _, err := corpus.Synthesize(corpus.GenSpec{Seed: 7, NumDocs: 200, NumTopics: 8}, an)
	if err != nil {
		log.Fatal(err)
	}

	st, err := segment.Open(segment.Config{
		Analyzer:      an,
		SealThreshold: 32, // small, to show several seals
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// Incremental ingestion: the store keeps serving searches while
	// documents stream in; the memtable seals every 32 documents.
	for i := 0; i < len(c.Docs); i += 50 {
		end := i + 50
		if end > len(c.Docs) {
			end = len(c.Docs)
		}
		if _, err := st.Add(c.Docs[i:end]...); err != nil {
			log.Fatal(err)
		}
		s := st.Stats()
		fmt.Printf("after %3d docs: %d sealed segments, %d in memtable\n",
			s.LiveDocs, s.Segments, s.MemtableDocs)
	}

	query := c.Docs[10].Title
	fmt.Printf("\nquery %q:\n", query)
	for _, r := range st.Search(query, 3) {
		doc, _ := st.Doc(r.Doc)
		fmt.Printf("  doc %-4d %.4f  %s\n", r.Doc, r.Score, doc.Title)
	}

	// Deletes are tombstones: visible immediately, reclaimed by
	// compaction.
	for id := corpus.DocID(0); id < 40; id++ {
		if err := st.Delete(id); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\ndeleted 40 docs: %d live, %d tombstones\n",
		st.Stats().LiveDocs, st.Stats().Tombstones)

	if err := st.Compact(); err != nil {
		log.Fatal(err)
	}
	s := st.Stats()
	fmt.Printf("after full compaction: %d segments, %d tombstones\n",
		s.Segments, s.Tombstones)

	// Persistence: segments round-trip through the TPIX codec plus a
	// manifest; loading re-analyzes nothing.
	dir, err := os.MkdirTemp("", "liveindex")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := st.Save(dir); err != nil {
		log.Fatal(err)
	}
	ld, err := segment.Load(dir, segment.Config{Analyzer: an})
	if err != nil {
		log.Fatal(err)
	}
	defer ld.Close()
	fmt.Printf("\nreloaded from %s: %d live docs, next ID %d\n",
		dir, ld.NumDocs(), ld.Stats().NextID)
	for _, r := range ld.Search(query, 3) {
		doc, _ := ld.Doc(r.Doc)
		fmt.Printf("  doc %-4d %.4f  %s\n", r.Doc, r.Score, doc.Title)
	}
}
