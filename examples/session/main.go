// Session: shows why per-query obfuscation is not enough when a user
// keeps researching the same subject. An adversary who watches the
// query log over time can intersect the cycles: the genuine topic
// recurs in every cycle while freshly-random masking topics mostly
// don't. The session-level obfuscator (toppriv.Session) keeps each
// user's decoy profile sticky, so the decoys recur exactly like the
// genuine topic and the frequency analysis collapses.
//
// Run:
//
//	go run ./examples/session
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"toppriv"

	"toppriv/internal/adversary"
)

func main() {
	log.SetFlags(0)

	fmt.Println("building service…")
	svc, err := toppriv.NewService(toppriv.ServiceSpec{
		Seed: 17,
		Corpus: toppriv.CorpusSpec{
			NumDocs:   1000,
			NumTopics: 16,
		},
		TrainIters: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	params := toppriv.PrivacyParams{Eps1: 0.04, Eps2: 0.015}

	// A researcher issues 8 different queries, all about medicine.
	medicine := svc.GroundTruth.TopicByName("medicine")
	queries := make([][]string, 8)
	rng := rand.New(rand.NewSource(23))
	for i := range queries {
		words := svc.GroundTruth.TopicWords[medicine]
		n := 8 + i%5
		var terms []string
		for _, w := range words[i : i+n] {
			terms = append(terms, svc.AnalyzeQuery(w)...)
		}
		queries[i] = terms
	}

	// TopM covers a realistic recurrence window: the adversary counts the
	// six most boosted topics of each cycle.
	attack := &adversary.IntersectionAttack{Eng: svc.Beliefs, TopM: 6}

	// Case 1: independent per-query obfuscation.
	obf, err := svc.NewObfuscator(params)
	if err != nil {
		log.Fatal(err)
	}
	var indepCycles [][][]string
	var trueU []int
	for _, q := range queries {
		cyc, err := obf.Obfuscate(q, rng)
		if err != nil {
			log.Fatal(err)
		}
		indepCycles = append(indepCycles, cyc.Queries)
		if len(trueU) == 0 && len(cyc.Intention) > 0 {
			trueU = cyc.Intention
		}
	}
	if len(trueU) == 0 {
		log.Fatal("no intention detected; adjust thresholds")
	}

	// Case 2: one sticky session with a compact decoy profile.
	sess, err := svc.NewSession(params)
	if err != nil {
		log.Fatal(err)
	}
	sess.MaxSticky = 4
	var stickyCycles [][][]string
	for _, q := range queries {
		cyc, err := sess.Obfuscate(q, rng)
		if err != nil {
			log.Fatal(err)
		}
		stickyCycles = append(stickyCycles, cyc.Queries)
	}

	evalRng := rand.New(rand.NewSource(29))
	// The adversary's real deliverable is the confusion set: topics that
	// recur in (almost) every cycle's top boosted topics. The genuine
	// interest is always in it — the question is how many decoys keep it
	// company.
	setIndep := attack.RecurrentTopics(indepCycles, 0.8, evalRng)
	setSticky := attack.RecurrentTopics(stickyCycles, 0.8, evalRng)

	fmt.Printf("\nresearcher's true interest: topic %d  [%s]\n",
		trueU[0], headWords(svc.Model, trueU[0]))
	fmt.Printf("\nintersection analysis over %d cycles (topics recurring in >=80%% of cycles):\n", len(queries))
	fmt.Printf("  independent cycles -> confusion set %v — the interest is pinned to 1 in %d\n",
		setIndep, len(setIndep))
	fmt.Printf("  sticky session     -> confusion set %v — 1 in %d, plausible deniability restored\n",
		setSticky, len(setSticky))

	fmt.Printf("\nsession decoy profile: %v\n", sess.StickyTopics())
	for _, tm := range sess.StickyTopics() {
		fmt.Printf("  topic %2d  [%s]\n", tm, headWords(svc.Model, tm))
	}
	fmt.Println("\nsticky decoys recur like the genuine topic, so recurrence stops identifying it.")
}

func headWords(m *toppriv.Model, t int) string {
	var words []string
	for _, tw := range m.TopWords(t, 5) {
		words = append(words, tw.Term)
	}
	return strings.Join(words, " ")
}
