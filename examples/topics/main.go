// Topics: explores the LDA substrate the way the paper's Appendix A
// does — it trains models of several sizes on the same corpus and
// prints (1) sample coherent and generic topics (Table II), (2) one
// conceptual topic traced across model sizes (Table III), and (3) the
// indistinct mixtures an undersized model produces (Table IV).
//
// Run:
//
//	go run ./examples/topics
package main

import (
	"fmt"
	"log"
	"os"

	"toppriv/internal/experiment"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training model grid (this takes a few seconds)…")
	env, err := experiment.NewEnv(experiment.EnvSpec{
		Seed:       11,
		NumDocs:    800,
		NumTopics:  16,
		Ks:         []int{4, 8, 16, 24},
		NumQueries: 10,
		TrainIters: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d docs, %d terms; models:", env.Corpus.NumDocs(), env.Corpus.VocabSize())
	for _, k := range env.SortedKs() {
		fmt.Printf(" %s", experiment.ModelName(k))
	}
	fmt.Println()
	fmt.Println()

	cols, err := experiment.Table2(env, []string{"medicine", "technology", "education", "finance"}, 15)
	if err != nil {
		log.Fatal(err)
	}
	experiment.PrintTopicColumns(os.Stdout, "Table II analogue: sample topics (coherent themes + one generic)", cols)
	fmt.Println()

	cols, err = experiment.Table3(env, "medicine", 15)
	if err != nil {
		log.Fatal(err)
	}
	experiment.PrintTopicColumns(os.Stdout, "Table III analogue: the medicine topic across model sizes", cols)
	fmt.Println()

	cols, err = experiment.Table4(env, 15)
	if err != nil {
		log.Fatal(err)
	}
	experiment.PrintTopicColumns(os.Stdout, "Table IV analogue: an undersized model mixes themes indistinctly", cols)
	fmt.Println()
	fmt.Println("note how Table IV columns blend many themes and generic words — the paper's")
	fmt.Println("reason for sizing the LDA model near the corpus's expected topic coverage.")
}
