// Adversary: runs the four §IV-D attack strategies against TopPriv
// cycles and against TrackMeNot-style random ghosts, printing a
// side-by-side resilience report. The punchline matches the paper:
// coherence filtering dismantles random ghosts but collapses to random
// guessing against TopPriv, and neither exposure-discounting, term
// elimination, nor replaying the (randomized) generator recovers the
// intention.
//
// Run:
//
//	go run ./examples/adversary
package main

import (
	"fmt"
	"log"
	"math/rand"

	"toppriv"

	"toppriv/internal/adversary"
	"toppriv/internal/core"
)

func main() {
	log.SetFlags(0)

	fmt.Println("building service and workload…")
	svc, err := toppriv.NewService(toppriv.ServiceSpec{
		Seed: 5,
		Corpus: toppriv.CorpusSpec{
			NumDocs:   1000,
			NumTopics: 16,
		},
		TrainIters: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	queries, err := svc.Workload(toppriv.WorkloadSpec{Seed: 6, NumQueries: 60})
	if err != nil {
		log.Fatal(err)
	}

	obf, err := svc.NewObfuscator(toppriv.PrivacyParams{Eps1: 0.04, Eps2: 0.015})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	// Build TopPriv trials.
	var tpTrials []adversary.Trial
	for _, q := range queries {
		terms := svc.AnalyzeQuery(q.Text())
		if len(terms) == 0 {
			continue
		}
		cyc, err := obf.Obfuscate(terms, rng)
		if err != nil {
			log.Fatal(err)
		}
		if cyc.Len() < 2 || len(cyc.Intention) == 0 {
			continue
		}
		tpTrials = append(tpTrials, adversary.Trial{
			Cycle:         cyc.Queries,
			UserIndex:     cyc.UserIndex,
			TrueIntention: cyc.Intention,
		})
	}

	// Build TrackMeNot trials (same user queries, random ghosts).
	tmn, err := svc.NewTrackMeNot(4, 6, 14)
	if err != nil {
		log.Fatal(err)
	}
	var tmnTrials []adversary.Trial
	for _, q := range queries {
		terms := svc.AnalyzeQuery(q.Text())
		if len(terms) == 0 {
			continue
		}
		cycle, userIdx, err := tmn.Cycle(terms, rng)
		if err != nil {
			log.Fatal(err)
		}
		tmnTrials = append(tmnTrials, adversary.Trial{Cycle: cycle, UserIndex: userIdx})
	}
	fmt.Printf("prepared %d TopPriv and %d TrackMeNot cycles\n\n", len(tpTrials), len(tmnTrials))

	evalRng := rand.New(rand.NewSource(8))
	coh := &adversary.CoherenceAttack{Eng: svc.Beliefs}

	fmt.Println("attack 1 — coherence filtering (identify the genuine query):")
	fmt.Printf("  vs TrackMeNot: %.0f%% success (random guess: %.0f%%)\n",
		100*adversary.EvalQueryGuess(coh, tmnTrials, evalRng),
		100*adversary.RandomGuessBaseline(tmnTrials))
	fmt.Printf("  vs TopPriv:    %.0f%% success (random guess: %.0f%%)\n",
		100*adversary.EvalQueryGuess(coh, tpTrials, evalRng),
		100*adversary.RandomGuessBaseline(tpTrials))

	disc := &adversary.DiscountAttack{Eng: svc.Beliefs}
	fmt.Println("\nattack 2 — discount high-exposure topics (recover U):")
	fmt.Printf("  vs TopPriv:    %.0f%% of intention topics recovered\n",
		100*adversary.EvalIntentionRecall(disc, tpTrials, evalRng))

	elim := &adversary.EliminationAttack{Eng: svc.Beliefs}
	fmt.Println("\nattack 3 — eliminate decoy-topic words, re-infer (recover U):")
	fmt.Printf("  vs TopPriv:    %.0f%% of intention topics recovered\n",
		100*adversary.EvalIntentionRecall(elim, tpTrials, evalRng))

	probe := &adversary.ProbeAttack{Obf: mustObf(svc, core.Params{Eps1: 0.04, Eps2: 0.015})}
	fmt.Println("\nattack 4 — probe: replay ghost generation on each query:")
	fmt.Printf("  vs TopPriv:    %.0f%% success (random guess: %.0f%%)\n",
		100*adversary.EvalQueryGuess(probe, tpTrials, evalRng),
		100*adversary.RandomGuessBaseline(tpTrials))

	fmt.Println("\nTopPriv cycles resist all four strategies; TrackMeNot falls to the first.")
}

func mustObf(svc *toppriv.Service, p toppriv.PrivacyParams) *toppriv.Obfuscator {
	o, err := svc.NewObfuscator(p)
	if err != nil {
		log.Fatal(err)
	}
	return o
}
