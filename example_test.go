package toppriv_test

import (
	"fmt"
	"math/rand"

	"toppriv"
)

// The examples build a deliberately tiny service so they run in well
// under a second; real deployments use the defaults (2,000 docs+).
func exampleService() *toppriv.Service {
	svc, err := toppriv.NewService(toppriv.ServiceSpec{
		Seed: 42,
		Corpus: toppriv.CorpusSpec{
			NumDocs:   150,
			NumTopics: 6,
			DocLenMin: 40,
			DocLenMax: 70,
		},
		TrainIters: 40,
	})
	if err != nil {
		panic(err)
	}
	return svc
}

// ExampleNewService shows the one-call setup: corpus, index, engine and
// topic model behind a single facade.
func ExampleNewService() {
	svc := exampleService()
	fmt.Println("docs:", svc.Corpus.NumDocs())
	fmt.Println("topics:", svc.Model.K)
	fmt.Println("has results:", len(svc.Search("stock market investors", 5)) > 0)
	// Output:
	// docs: 150
	// topics: 6
	// has results: true
}

// ExampleService_NewObfuscator walks one query through TopPriv.
func ExampleService_NewObfuscator() {
	svc := exampleService()
	obf, err := svc.NewObfuscator(toppriv.PrivacyParams{Eps1: 0.04, Eps2: 0.02})
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(7))
	terms := svc.AnalyzeQuery("stock market investors trading dow jones index shares volume composite")
	cycle, err := obf.Obfuscate(terms, rng)
	if err != nil {
		panic(err)
	}
	fmt.Println("cycle has ghost queries:", cycle.Len() > 1)
	fmt.Println("user query preserved:", len(cycle.UserQuery()) == len(terms))
	// Output:
	// cycle has ghost queries: true
	// user query preserved: true
}

// ExamplePrivacyParams_Validate shows the ε1 ≥ ε2 discipline of the
// privacy model.
func ExamplePrivacyParams_Validate() {
	good := toppriv.PrivacyParams{Eps1: 0.05, Eps2: 0.01}
	bad := toppriv.PrivacyParams{Eps1: 0.01, Eps2: 0.05}
	fmt.Println("good:", good.Validate() == nil)
	fmt.Println("bad: ", bad.Validate() == nil)
	// Output:
	// good: true
	// bad:  false
}
