// Package toppriv is a from-scratch reproduction of "Obfuscating the
// Topical Intention in Enterprise Text Search" (Pang, Xiao, Shen —
// ICDE 2012): a client-side privacy layer that hides the topics behind
// similarity text-search queries by mixing each genuine query among
// automatically generated, semantically coherent ghost queries, with a
// formal (ε1, ε2)-privacy guarantee over an LDA topic model.
//
// The package is a facade over the substrates in internal/: text
// processing, a synthetic enterprise corpus, an inverted index, a
// vector-space search engine, collapsed-Gibbs LDA, the topical belief
// model, the TopPriv obfuscator, baselines (PDX, TrackMeNot), adversary
// simulations and the evaluation harness. A typical embedding:
//
//	svc, err := toppriv.NewService(toppriv.ServiceSpec{Seed: 1})
//	obf, err := svc.NewObfuscator(toppriv.DefaultPrivacyParams())
//	cycle, err := obf.Obfuscate(svc.AnalyzeQuery("apache helicopter army"), rng)
//	// submit every query in cycle.Queries; keep results of cycle.UserIndex
//
// or, end to end over HTTP:
//
//	handler, _ := svc.Handler()
//	ts := httptest.NewServer(handler)
//	client, _ := svc.NewClient(ts.URL, obf, 42)
//	hits, _ := client.Search("apache helicopter army")
package toppriv

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"

	"toppriv/internal/baseline"
	"toppriv/internal/belief"
	"toppriv/internal/cluster"
	"toppriv/internal/core"
	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/lda"
	"toppriv/internal/linkrank"
	"toppriv/internal/search"
	"toppriv/internal/segment"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

// Re-exported core types. The aliases keep one set of types across the
// facade and the internal packages, so values flow freely between them.
type (
	// Document is one corpus document.
	Document = corpus.Document
	// CorpusSpec configures synthetic corpus generation.
	CorpusSpec = corpus.GenSpec
	// GroundTruth describes the generative topics behind a synthetic corpus.
	GroundTruth = corpus.GroundTruth
	// QuerySpec is one workload query with its target topics.
	QuerySpec = corpus.QuerySpec
	// WorkloadSpec configures workload generation.
	WorkloadSpec = corpus.WorkloadSpec
	// PrivacyParams are the user's (ε1, ε2) settings and knobs.
	PrivacyParams = core.Params
	// Cycle is an obfuscated query cycle.
	Cycle = core.Cycle
	// Obfuscator generates (ε1, ε2)-private cycles.
	Obfuscator = core.Obfuscator
	// Session obfuscates a user's query sequence with a sticky decoy
	// profile, resisting cross-cycle intersection analysis.
	Session = core.Session
	// Model is a trained LDA topic model.
	Model = lda.Model
	// TrainSpec configures LDA training.
	TrainSpec = lda.TrainSpec
	// SearchHit is one search result row.
	SearchHit = search.SearchHit
	// Client is the trusted client module (Fig. 1 of the paper).
	Client = search.Client
	// Server is the HTTP search server.
	Server = search.Server
	// PDX is the query-embellishment baseline.
	PDX = baseline.PDX
	// TrackMeNot is the random-ghost baseline.
	TrackMeNot = baseline.TrackMeNot
	// BeliefEngine computes topical beliefs (priors, posteriors, boosts).
	BeliefEngine = belief.Engine
	// Analyzer is the shared text-normalization pipeline.
	Analyzer = textproc.Analyzer
	// IndexStats summarizes the inverted index.
	IndexStats = index.Stats
	// ExecMode selects the query-execution strategy: pruned
	// document-at-a-time execution (MaxScore or block-max WAND, the
	// default) or the exhaustive reference scorer.
	ExecMode = vsm.ExecMode
	// ExecStats counts the work one query performed.
	ExecStats = vsm.ExecStats
	// Request is one structured similarity query: terms or raw text,
	// k, an execution mode, an optional document filter.
	Request = vsm.Request
	// Response is the ranked hits plus execution stats for one Request.
	Response = vsm.Response
	// RetryPolicy bounds transport retries on transient connection
	// errors (used by the trusted client and the cluster router).
	RetryPolicy = search.RetryPolicy
	// ClusterConfig parameterizes a scatter-gather router over shard
	// servers.
	ClusterConfig = cluster.Config
	// ClusterRouter fans each query cycle out across shard servers,
	// injecting cluster-merged collection statistics so the merged
	// ranking is score-identical to a single index, and degrading
	// gracefully when shards fail.
	ClusterRouter = cluster.Router
	// ClusterShard serves one slice of the corpus to a router over the
	// /cluster/* wire schema.
	ClusterShard = cluster.Shard
	// ClusterShardConfig parameterizes a persistent shard: data
	// directory, save cadence, logging.
	ClusterShardConfig = cluster.ShardConfig
	// StoreConfig parameterizes a live segment store (scoring,
	// execution mode, seal threshold); used by OpenClusterShard.
	StoreConfig = segment.Config
)

// Query-execution modes, re-exported from the engine.
const (
	// ExecAuto prunes wherever impact metadata exists (block-max WAND
	// for cosine over block-carrying indexes, MaxScore otherwise).
	ExecAuto = vsm.ExecAuto
	// ExecMaxScore forces document-at-a-time MaxScore pruning.
	ExecMaxScore = vsm.ExecMaxScore
	// ExecExhaustive forces the exhaustive reference scorer.
	ExecExhaustive = vsm.ExecExhaustive
	// ExecBlockMax forces block-max WAND: per-block impact bounds let
	// the engine skip whole posting blocks, not just documents.
	ExecBlockMax = vsm.ExecBlockMax
)

// DefaultPrivacyParams returns the paper's defaults: ε1 = 5%, ε2 = 1%.
func DefaultPrivacyParams() PrivacyParams { return core.DefaultParams() }

// NewClusterRouter connects a scatter-gather router to running shard
// servers. The router offers the same surfaces a live store does
// (search, mutation, stats, titles), so search.NewServer hosts it
// unchanged and clients cannot tell a cluster from a single node —
// except for the Degraded flag when part of the corpus is unavailable.
// Set ClusterConfig.JournalDir for a durable placement journal:
// mutations are acknowledged only after an fsynced WAL append, a
// router restart replays them, and the health loop re-drives whatever
// a crashed shard missed.
func NewClusterRouter(cfg ClusterConfig) (*ClusterRouter, error) { return cluster.New(cfg) }

// NewClusterShard wraps a live store in the shard wire surface; mount
// it on the store's search server (Shard.Mount) to serve a router.
// The shard is memory-only; use OpenClusterShard for one that
// survives restarts.
func NewClusterShard(store *segment.Store) *ClusterShard { return cluster.NewShard(store) }

// OpenClusterShard opens (or creates) a persistent shard: the segment
// store recovers from its manifest, the gid table and applied journal
// sequence from SHARD.json beside it, and a background saver persists
// both as mutations accumulate. Close flushes and saves; kill -9
// rewinds to the last save and the router's journal re-drives the
// rest.
func OpenClusterShard(storeCfg StoreConfig, cfg ClusterShardConfig) (*ClusterShard, error) {
	return cluster.OpenShard(storeCfg, cfg)
}

// ServiceSpec configures NewService.
type ServiceSpec struct {
	// Seed drives corpus synthesis, workload generation and LDA training.
	Seed int64
	// Corpus configures the synthetic corpus. Zero-valued fields take
	// the documented defaults (2,000 docs, 32 topics, …). Ignored when
	// Documents is non-nil.
	Corpus CorpusSpec
	// Documents, when non-nil, ingests these documents instead of
	// synthesizing a corpus (no ground truth will be available).
	Documents []Document
	// NumTopics is K for the topic model. Zero means the corpus
	// ground-truth topic count, or 24 for ingested corpora.
	NumTopics int
	// TrainIters is the Gibbs sweep budget. Zero means 120.
	TrainIters int
	// BM25 selects Okapi BM25 scoring instead of tf-idf cosine.
	BM25 bool
	// ExecMode pins the query-execution strategy for the service's
	// engine or live store. The zero value (ExecAuto) runs pruned
	// top-k execution (block-max WAND or MaxScore); ExecExhaustive
	// restores the scan-everything reference behavior. Rankings are
	// identical either way.
	ExecMode ExecMode
	// LinkPriorWeight, when > 0, synthesizes a citation graph over the
	// corpus (topical preferential attachment), computes PageRank, and
	// folds it into the ranking with this weight in (0, 1] — the
	// §III-A "in conjunction with Web link analysis techniques" engine
	// variant. TopPriv is unaffected either way.
	LinkPriorWeight float64
	// Live serves searches from the segmented live index instead of the
	// immutable engine: AddDocuments and DeleteDocument become
	// available, and the HTTP handler accepts POST /index and
	// DELETE /doc/{id}. Incompatible with LinkPriorWeight (a static
	// prior cannot follow a changing corpus).
	Live bool
	// SealThreshold is the live memtable's seal size in documents
	// (0 = segment package default). Ignored unless Live.
	SealThreshold int
}

// Service wires the full system: corpus, index, search engine, topic
// model and belief engine, all sharing one analyzer. Build it once; it
// is then safe for concurrent readers. In live mode the document set
// may also change concurrently through AddDocuments/DeleteDocument —
// the belief engine keeps working against the trained model, and the
// service tracks how far the corpus has drifted from it (Staleness).
type Service struct {
	Corpus      *corpus.Corpus
	GroundTruth *GroundTruth // nil for ingested corpora
	Index       *index.Index
	Model       *Model
	Beliefs     *BeliefEngine

	analyzer *Analyzer
	searcher vsm.Searcher
	store    *segment.Store // non-nil in live mode
	inf      *lda.Inferencer

	mu sync.Mutex
	// foldRNG drives fold-in inference for documents added after
	// training; guarded by mu.
	foldRNG *rand.Rand
	// foldedTopics caches the fold-in topic posterior of each
	// post-training document, keyed by its live-store ID.
	foldedTopics map[corpus.DocID][]float64
	// staleOps counts adds and deletes since the model was trained.
	staleOps int
	// trainedDocs is the corpus size the model was trained on.
	trainedDocs int
}

// NewService builds everything from the spec: synthesize or ingest the
// corpus, build the inverted index and search engine, train the LDA
// model, and stand up the belief engine.
func NewService(spec ServiceSpec) (*Service, error) {
	an := textproc.NewAnalyzer()
	var (
		c   *corpus.Corpus
		gt  *GroundTruth
		err error
	)
	if spec.Documents != nil {
		c, err = corpus.Build(spec.Documents, an, textproc.PruneSpec{MinDocFreq: 2})
	} else {
		cs := spec.Corpus
		if cs.Seed == 0 {
			cs.Seed = spec.Seed
		}
		c, gt, err = corpus.Synthesize(cs, an)
	}
	if err != nil {
		return nil, fmt.Errorf("toppriv: corpus: %w", err)
	}

	idx, err := index.Build(c)
	if err != nil {
		return nil, fmt.Errorf("toppriv: index: %w", err)
	}
	scoring := vsm.Cosine
	if spec.BM25 {
		scoring = vsm.BM25
	}
	var (
		searcher vsm.Searcher
		store    *segment.Store
	)
	switch {
	case spec.Live && spec.LinkPriorWeight > 0:
		return nil, fmt.Errorf("toppriv: Live is incompatible with LinkPriorWeight (static prior over a changing corpus)")
	case spec.Live:
		store, err = segment.Open(segment.Config{
			Scoring:       scoring,
			ExecMode:      spec.ExecMode,
			Analyzer:      an,
			SealThreshold: spec.SealThreshold,
		})
		if err != nil {
			return nil, fmt.Errorf("toppriv: live store: %w", err)
		}
		if _, err := store.Add(c.Docs...); err != nil {
			store.Close()
			return nil, fmt.Errorf("toppriv: live store seed: %w", err)
		}
		searcher = store
	case spec.LinkPriorWeight > 0:
		topics := make([][]float64, c.NumDocs())
		for d := range topics {
			theta := c.Docs[d].TrueTopics
			if len(theta) == 0 {
				theta = []float64{1} // ingested corpora: single pseudo-topic
			}
			topics[d] = theta
		}
		g, err := linkrank.SyntheticGraph(topics, 4, spec.Seed+13)
		if err != nil {
			return nil, fmt.Errorf("toppriv: link graph: %w", err)
		}
		pr, err := linkrank.PageRank(g, 0.85, 100, 1e-10)
		if err != nil {
			return nil, fmt.Errorf("toppriv: pagerank: %w", err)
		}
		eng, err := vsm.NewEngineWithPrior(idx, an, scoring, pr, spec.LinkPriorWeight)
		if err != nil {
			return nil, fmt.Errorf("toppriv: engine: %w", err)
		}
		eng.SetExecMode(spec.ExecMode)
		searcher = eng
	default:
		eng, err := vsm.NewEngine(idx, an, scoring)
		if err != nil {
			return nil, fmt.Errorf("toppriv: engine: %w", err)
		}
		eng.SetExecMode(spec.ExecMode)
		searcher = eng
	}

	fail := func(err error) (*Service, error) {
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	k := spec.NumTopics
	if k == 0 {
		if c.GroundTruthTopics > 0 {
			k = c.GroundTruthTopics
		} else {
			k = 24
		}
	}
	iters := spec.TrainIters
	if iters == 0 {
		iters = 120
	}
	m, _, err := lda.Train(c, lda.TrainSpec{NumTopics: k, Iterations: iters, Seed: spec.Seed})
	if err != nil {
		return fail(fmt.Errorf("toppriv: train: %w", err))
	}
	inf, err := lda.NewInferencer(m, lda.InferSpec{})
	if err != nil {
		return fail(fmt.Errorf("toppriv: inferencer: %w", err))
	}
	beliefs, err := belief.NewEngine(inf)
	if err != nil {
		return fail(fmt.Errorf("toppriv: beliefs: %w", err))
	}

	return &Service{
		Corpus:       c,
		GroundTruth:  gt,
		Index:        idx,
		Model:        m,
		Beliefs:      beliefs,
		analyzer:     an,
		searcher:     searcher,
		store:        store,
		inf:          inf,
		foldRNG:      rand.New(rand.NewSource(spec.Seed + 7919)),
		foldedTopics: make(map[corpus.DocID][]float64),
		trainedDocs:  c.NumDocs(),
	}, nil
}

// Analyzer returns the shared text pipeline.
func (s *Service) Analyzer() *Analyzer { return s.analyzer }

// AnalyzeQuery normalizes raw query text into index/model terms.
func (s *Service) AnalyzeQuery(raw string) []string { return s.analyzer.Analyze(raw) }

// Search runs an (unprotected) similarity query directly against the
// local engine, returning up to k results. Legacy wrapper; new code
// should use SearchRequest.
func (s *Service) Search(raw string, k int) []SearchHit {
	return s.toHits(s.searcher.Search(raw, k))
}

// SearchRequest runs one structured (unprotected) query against the
// local engine or live store: per-request k and execution mode,
// context cancellation, execution stats. Hits carry titles resolved
// against the service's document source.
func (s *Service) SearchRequest(ctx context.Context, req Request) ([]SearchHit, ExecStats, error) {
	rs, ok := s.searcher.(vsm.RequestSearcher)
	if !ok {
		return nil, ExecStats{}, fmt.Errorf("toppriv: %T does not implement vsm.RequestSearcher", s.searcher)
	}
	resp, err := rs.SearchRequest(ctx, req)
	if err != nil {
		return nil, ExecStats{}, err
	}
	return s.toHits(resp.Hits), resp.Stats, nil
}

// SearchBatch runs a batch of structured queries — typically one
// obfuscation cycle — in a single engine pass that shares term
// resolution and postings buffers across members. Responses align with
// reqs by index; each member's hits are identical to running it alone.
func (s *Service) SearchBatch(ctx context.Context, reqs []Request) ([]Response, error) {
	rs, ok := s.searcher.(vsm.RequestSearcher)
	if !ok {
		return nil, fmt.Errorf("toppriv: %T does not implement vsm.RequestSearcher", s.searcher)
	}
	return rs.SearchBatch(ctx, reqs)
}

// SearchExec runs an unprotected query under an explicit execution
// mode, overriding the spec default — results are identical across
// modes; the knob exists for benchmarking and regression triage. A
// searcher without per-mode support is an explicit error, not a silent
// fallback to the default mode (callers asking for a specific plan
// must not silently measure a different one).
func (s *Service) SearchExec(raw string, k int, mode ExecMode) ([]SearchHit, error) {
	m, ok := s.searcher.(search.ModeSearcher)
	if !ok {
		return nil, fmt.Errorf("toppriv: %T does not support per-request execution modes", s.searcher)
	}
	return s.toHits(m.SearchMode(raw, k, mode)), nil
}

// toHits resolves result titles against whichever document source the
// service runs on.
func (s *Service) toHits(results []vsm.Result) []SearchHit {
	hits := make([]SearchHit, len(results))
	for i, r := range results {
		hit := SearchHit{Doc: r.Doc, Score: r.Score}
		if s.store != nil {
			if doc, ok := s.store.Doc(r.Doc); ok {
				hit.Title = doc.Title
			}
		} else if int(r.Doc) < len(s.Corpus.Docs) {
			hit.Title = s.Corpus.Docs[r.Doc].Title
		}
		hits[i] = hit
	}
	return hits
}

// Live reports whether the service runs on the segmented live index.
func (s *Service) Live() bool { return s.store != nil }

// Store exposes the live segment store (nil unless ServiceSpec.Live).
func (s *Service) Store() *segment.Store { return s.store }

// Close releases live-mode resources (the background compactor). It is
// a no-op for immutable services.
func (s *Service) Close() error {
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}

// AddDocuments ingests documents into the live index, immediately
// searchable. The LDA model is not retrained; instead each new document
// is folded in through the existing inferencer — its topic posterior
// under the trained Φ — so the belief engine's view of the corpus stays
// consistent, and the service's staleness counter records the drift.
// Callers watching Staleness decide when a full retrain is due.
func (s *Service) AddDocuments(docs ...Document) ([]corpus.DocID, error) {
	if s.store == nil {
		return nil, fmt.Errorf("toppriv: AddDocuments requires ServiceSpec.Live")
	}
	ids, err := s.store.Add(docs...)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, doc := range docs {
		terms := s.analyzer.Analyze(doc.Text)
		s.foldedTopics[ids[i]] = s.inf.PosteriorTerms(terms, s.foldRNG)
		s.staleOps++
	}
	return ids, nil
}

// DeleteDocument tombstones a live document. Like adds, deletes drift
// the corpus away from the trained model and count toward Staleness.
func (s *Service) DeleteDocument(id corpus.DocID) error {
	if s.store == nil {
		return fmt.Errorf("toppriv: DeleteDocument requires ServiceSpec.Live")
	}
	if err := s.store.Delete(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.foldedTopics, id)
	s.staleOps++
	return nil
}

// FoldedTopics returns the fold-in topic posterior of a document added
// after training (and true), or nil and false for training-corpus
// documents.
func (s *Service) FoldedTopics(id corpus.DocID) ([]float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	theta, ok := s.foldedTopics[id]
	if !ok {
		return nil, false
	}
	out := make([]float64, len(theta))
	copy(out, theta)
	return out, true
}

// Staleness reports how far the live corpus has drifted from the
// trained model: mutations since training divided by the training
// corpus size. 0 means the model is fresh; callers typically retrain
// past some threshold (say 0.2).
func (s *Service) Staleness() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.trainedDocs == 0 {
		return 0
	}
	return float64(s.staleOps) / float64(s.trainedDocs)
}

// NewObfuscator builds a TopPriv obfuscator with the given privacy
// parameters over this service's topic model.
func (s *Service) NewObfuscator(p PrivacyParams) (*Obfuscator, error) {
	return core.NewObfuscator(s.Beliefs, p)
}

// NewSession starts a session-level obfuscation stream for one user:
// masking topics adopted early are preferred later, so a user who keeps
// querying the same interest does not leak it to cross-cycle frequency
// analysis.
func (s *Service) NewSession(p PrivacyParams) (*Session, error) {
	obf, err := s.NewObfuscator(p)
	if err != nil {
		return nil, err
	}
	return core.NewSession(obf)
}

// NewPDX builds the query-embellishment baseline.
func (s *Service) NewPDX(expansion, eps1 float64) (*PDX, error) {
	return baseline.NewPDX(s.Beliefs, expansion, eps1)
}

// NewTrackMeNot builds the random-ghost baseline.
func (s *Service) NewTrackMeNot(numGhosts, minLen, maxLen int) (*TrackMeNot, error) {
	return baseline.NewTrackMeNot(s.Beliefs, numGhosts, minLen, maxLen)
}

// Handler returns the HTTP search server for this corpus: the
// unmodified engine of the paper's system model. Live services get the
// mutation endpoints (POST /index, DELETE /doc/{id}) as well; document
// lookups then resolve through the live store. The server's GET
// /metrics exposition additionally carries this service's LDA
// model-staleness gauge, so a scraper can watch corpus drift and alert
// when a retrain is due.
func (s *Service) Handler() (*Server, error) {
	var (
		srv *Server
		err error
	)
	if s.store != nil {
		srv, err = search.NewServer(s.store, nil)
	} else {
		srv, err = search.NewServer(s.searcher, s.Corpus.Docs)
	}
	if err != nil {
		return nil, err
	}
	srv.Registry().GaugeFunc("toppriv_lda_staleness",
		"Corpus drift since LDA training: mutations / training-corpus size.",
		s.Staleness)
	return srv, nil
}

// NewClient builds the trusted client module against a running server.
func (s *Service) NewClient(baseURL string, obf *Obfuscator, seed int64) (*Client, error) {
	return search.NewClient(baseURL, http.DefaultClient, obf, s.analyzer, rand.New(rand.NewSource(seed)))
}

// Workload generates benchmark queries from the service's ground truth
// (synthetic corpora only).
func (s *Service) Workload(spec WorkloadSpec) ([]QuerySpec, error) {
	if s.GroundTruth == nil {
		return nil, fmt.Errorf("toppriv: workload needs a synthetic corpus with ground truth")
	}
	return corpus.Workload(s.GroundTruth, spec)
}

// Stats summarizes the inverted index (postings skew, PIR padding
// cost). In live mode the statistics come from the live store and
// track adds and deletes; the exported Index field remains the
// training-corpus snapshot the LDA model was fit to.
func (s *Service) Stats() IndexStats {
	if s.store != nil {
		return s.store.ComputeStats()
	}
	return s.Index.ComputeStats()
}
