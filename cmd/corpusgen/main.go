// Command corpusgen synthesizes the WSJ-substitute corpus and writes it
// as JSON, so every other tool (ldatrain, searchd, experiments) can work
// from the same deterministic document set.
//
// Usage:
//
//	corpusgen -out corpus.json -docs 2000 -topics 24 -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"toppriv/internal/corpus"
	"toppriv/internal/textproc"
	"toppriv/internal/trec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("corpusgen: ")

	var (
		out      = flag.String("out", "corpus.json", "output path")
		docs     = flag.Int("docs", 2000, "number of documents")
		topics   = flag.Int("topics", 24, "ground-truth topic count")
		seed     = flag.Int64("seed", 1, "generation seed")
		stats    = flag.Bool("stats", true, "print corpus statistics")
		trecDocs = flag.String("trec", "", "ingest a TREC SGML document file (e.g. the real WSJ collection) instead of synthesizing")
	)
	flag.Parse()

	an := textproc.NewAnalyzer()
	var (
		c   *corpus.Corpus
		gt  *corpus.GroundTruth
		err error
	)
	if *trecDocs != "" {
		tf, err2 := os.Open(*trecDocs)
		if err2 != nil {
			log.Fatal(err2)
		}
		parsed, err2 := trec.ParseDocuments(tf)
		tf.Close()
		if err2 != nil {
			log.Fatal(err2)
		}
		c, err = corpus.Build(parsed, an, textproc.PruneSpec{MinDocFreq: 2})
	} else {
		c, gt, err = corpus.Synthesize(corpus.GenSpec{
			Seed:      *seed,
			NumDocs:   *docs,
			NumTopics: *topics,
		}, an)
	}
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := c.WriteJSON(f); err != nil {
		log.Fatal(err)
	}

	if *stats {
		fmt.Printf("documents:    %d\n", c.NumDocs())
		fmt.Printf("vocabulary:   %d terms\n", c.VocabSize())
		fmt.Printf("tokens:       %d (mean %.1f per doc)\n", c.TotalTokens(), c.AvgDocLen())
		if gt != nil {
			fmt.Printf("topics:       %d ground-truth (%s … %s)\n",
				len(gt.TopicNames), gt.TopicNames[0], gt.TopicNames[len(gt.TopicNames)-1])
		}
		fmt.Printf("written:      %s\n", *out)
	}
}
