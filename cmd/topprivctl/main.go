// Command topprivctl is the trusted client of Fig. 1 as a CLI: it reads
// queries from the command line (or stdin), obfuscates each one through
// TopPriv against a trained model, submits the whole cycle to a running
// searchd, and prints only the genuine results — optionally showing the
// ghost queries so you can see what the server saw.
//
// Usage:
//
//	topprivctl -server http://localhost:8080 -model model.gob \
//	    -eps1 0.05 -eps2 0.01 -show-ghosts "apache helicopter army"
//
// With no positional arguments, queries are read one per line from
// stdin.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"time"

	"toppriv/internal/belief"
	"toppriv/internal/core"
	"toppriv/internal/corpus"
	"toppriv/internal/lda"
	"toppriv/internal/search"
	"toppriv/internal/telemetry"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topprivctl: ")

	var (
		server     = flag.String("server", "http://localhost:8080", "searchd base URL")
		modelPath  = flag.String("model", "model.gob", "trained LDA model from ldatrain")
		eps1       = flag.Float64("eps1", 0.05, "relevance threshold ε1")
		eps2       = flag.Float64("eps2", 0.01, "exposure threshold ε2 (≤ ε1)")
		k          = flag.Int("k", 10, "results per query")
		batch      = flag.Bool("batch", false, "submit each obfuscation cycle in a single POST /search/batch round-trip instead of query-by-query (the server still logs every cycle member separately)")
		execMode   = flag.String("exec", "", "ask the server for this query-execution mode (auto, maxscore, blockmax, exhaustive; empty = server default)")
		seed       = flag.Int64("seed", 0, "obfuscation seed (0 = nondeterministic)")
		showGhosts = flag.Bool("show-ghosts", false, "print the ghost queries the server saw")
		plain      = flag.Bool("plain", false, "skip obfuscation (for comparison)")
		session    = flag.Bool("session", false, "keep a sticky decoy profile across the queries of this invocation (resists cross-cycle intersection analysis)")
		stats      = flag.Bool("stats", false, "print the server's index statistics (GET /stats) — docs, terms, serialized size, and the exact compressed-postings footprint — then exit")
		metrics    = flag.Bool("metrics", false, "fetch GET /metrics and pretty-print every family (aligned, sorted), then exit")
		traces     = flag.Int("traces", 0, "fetch the most recent N per-query phase traces (GET /debug/traces; -1 = all), then exit")
		addDocs    = flag.String("add-docs", "", "admin: ingest documents from this JSON file into a -live searchd (POST /index), then exit")
		deleteDoc  = flag.Int64("delete-doc", -1, "admin: tombstone this document ID on a -live searchd (DELETE /doc/{id}), then exit")
		adminToken = flag.String("admin-token", "", "bearer token for the admin verbs (when searchd runs with -admin-token)")
	)
	flag.Parse()

	// Admin verbs talk straight to the live index and need no model.
	if *stats {
		runStats(*server)
		return
	}
	if *metrics {
		runMetrics(*server)
		return
	}
	if *traces != 0 {
		runTraces(*server, *adminToken, *traces)
		return
	}
	if *addDocs != "" || *deleteDoc >= 0 {
		runAdmin(*server, *adminToken, *addDocs, *deleteDoc)
		return
	}

	if *batch && *session {
		// Sessions obfuscate with a sticky decoy profile and submit
		// member by member; silently dropping that for the batch
		// transport would change the privacy behavior the user asked
		// for.
		log.Fatal("-batch and -session are mutually exclusive (session cycles are submitted query-by-query)")
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	m, err := lda.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	inf, err := lda.NewInferencer(m, lda.InferSpec{})
	if err != nil {
		log.Fatal(err)
	}
	beliefs, err := belief.NewEngine(inf)
	if err != nil {
		log.Fatal(err)
	}
	obf, err := core.NewObfuscator(beliefs, core.Params{Eps1: *eps1, Eps2: *eps2})
	if err != nil {
		log.Fatal(err)
	}
	rngSeed := *seed
	if rngSeed == 0 {
		rngSeed = int64(os.Getpid())
	}
	an := textproc.NewAnalyzer()
	client, err := search.NewClient(*server, http.DefaultClient, obf, an, rand.New(rand.NewSource(rngSeed)))
	if err != nil {
		log.Fatal(err)
	}
	// Fail on a bad -exec now, not with an HTTP 400 on every query of
	// the first cycle.
	if _, err := vsm.ParseExecMode(*execMode); err != nil {
		log.Fatal(err)
	}
	client.K = *k
	client.Exec = *execMode

	var sess *core.Session
	if *session {
		sess, err = core.NewSession(obf)
		if err != nil {
			log.Fatal(err)
		}
		sess.MaxSticky = 6
	}

	run := func(query string) {
		query = strings.TrimSpace(query)
		if query == "" {
			return
		}
		var hits []search.SearchHit
		var err error
		var sessionCycle *core.Cycle
		switch {
		case *plain:
			hits, err = client.SearchPlain(query)
		case *batch:
			hits, err = client.SearchCycle(context.Background(), query)
		case sess != nil:
			// Session mode: obfuscate with the sticky profile, then
			// submit each query of the cycle individually.
			terms := an.Analyze(query)
			if len(terms) == 0 {
				log.Printf("query %q: no indexable terms", query)
				return
			}
			sessionCycle, err = sess.Obfuscate(terms, rand.New(rand.NewSource(rngSeed+int64(len(sess.History)))))
			if err == nil {
				for i, q := range sessionCycle.Queries {
					res, qerr := client.SearchPlain(strings.Join(q, " "))
					if qerr != nil {
						err = qerr
						break
					}
					if i == sessionCycle.UserIndex {
						hits = res
					}
				}
			}
		default:
			hits, err = client.Search(query)
		}
		if err != nil {
			log.Printf("query %q: %v", query, err)
			return
		}
		fmt.Printf("query: %s\n", query)
		if !*plain {
			cyc := sessionCycle
			if cyc == nil {
				cyc = client.LastCycle()
			}
			if cyc != nil {
				fmt.Printf("  cycle: %d queries, intention |U|=%d, exposure %.2f%%, satisfied=%v\n",
					cyc.Len(), len(cyc.Intention), cyc.Exposure*100, cyc.Satisfied)
				if *showGhosts {
					for i, g := range cyc.Queries {
						tag := "ghost"
						if i == cyc.UserIndex {
							tag = "USER "
						}
						fmt.Printf("  [%s] %s\n", tag, strings.Join(g, " "))
					}
				}
			}
		}
		for i, h := range hits {
			fmt.Printf("  %2d. doc %-6d %.4f  %s\n", i+1, h.Doc, h.Score, h.Title)
		}
	}

	if flag.NArg() > 0 {
		for _, q := range flag.Args() {
			run(q)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		run(sc.Text())
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

// runStats prints the server's index-shape report: the collection
// counts plus the postings memory footprint the compressed layout is
// accountable for.
func runStats(server string) {
	client := search.NewAdminClient(server, nil)
	full, err := client.StatsFull()
	if err != nil {
		log.Fatal(err)
	}
	s := full.Stats
	fmt.Printf("documents:         %d\n", s.NumDocs)
	fmt.Printf("terms:             %d\n", s.NumTerms)
	fmt.Printf("postings:          %d (mean list %.1f, max list %d)\n", s.NumPostings, s.MeanListLen, s.MaxListLen)
	fmt.Printf("serialized bytes:  %d\n", s.SizeBytes)
	fmt.Printf("postings bytes:    %d (%.1f bytes/doc", s.PostingsBytes, s.BytesPerDoc)
	if s.PostingsBytes > 0 {
		fmt.Printf(", %.2fx vs uncompressed", float64(8*s.NumPostings)/float64(s.PostingsBytes))
	}
	fmt.Println(")")
	fmt.Printf("PIR-padded bytes:  %d (%.0fx blowup)\n", s.PaddedPIRBytes, s.BlowupFactor())
	ql := full.QueryLog
	fmt.Printf("query log:         %d retained, %d evicted (seq [%d, %d))\n", ql.Retained, ql.Evicted, ql.HeadSeq, ql.TailSeq)
	if c := full.Cluster; c != nil {
		fmt.Printf("cluster:           %d shards, %d degraded queries\n", len(c.Shards), c.Degraded)
		if c.Journaled {
			fmt.Printf("journal:           %d bytes WAL, %d pending records, %d replayed entries, %d recoveries\n",
				c.JournalBytes, c.PendingRecords, c.ReplayedEntries, c.Recoveries)
		}
		for _, sh := range c.Shards {
			state := "up"
			if !sh.Up {
				state = "DOWN"
			}
			fmt.Printf("  %-28s %-4s %7d docs  %8d reqs  %5d errs  p99 %.1fms",
				sh.Shard, state, sh.Docs, sh.Requests, sh.Errors, sh.P99Millis)
			if sh.Restarts > 0 {
				fmt.Printf("  %d restarts", sh.Restarts)
			}
			if sh.LastSeenUnix > 0 {
				fmt.Printf("  last seen %s", time.Unix(sh.LastSeenUnix, 0).Format(time.TimeOnly))
			}
			if sh.LastError != "" {
				fmt.Printf("  (%s)", sh.LastError)
			}
			fmt.Println()
		}
	}
}

// runMetrics scrapes GET /metrics and pretty-prints the families the
// way a human reads them — sorted, aligned, one sample per line — via
// the same parser the round-trip tests use.
func runMetrics(server string) {
	client := search.NewAdminClient(server, nil)
	text, err := client.MetricsText()
	if err != nil {
		log.Fatal(err)
	}
	fams, err := telemetry.ParseText(strings.NewReader(text))
	if err != nil {
		log.Fatal(err)
	}
	if err := telemetry.FormatTable(fams, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// runTraces prints the server's retained per-query phase traces,
// newest last. Traces carry timings and work counters, never query
// text.
func runTraces(server, token string, n int) {
	client := search.NewAdminClient(server, nil)
	client.AdminToken = token
	if n < 0 {
		n = 0 // 0 = all, mirroring the endpoint
	}
	traces, err := client.Traces(n)
	if err != nil {
		log.Fatal(err)
	}
	if len(traces) == 0 {
		fmt.Println("no traces retained (run some queries first)")
		return
	}
	fmt.Printf("%-8s %-8s %-9s %6s %4s %6s %10s %10s %10s %10s %10s %8s\n",
		"SEQ", "SCORER", "MODE", "TERMS", "K", "BATCH", "RESOLVE", "FETCH", "TRAVERSE", "MERGE", "TOTAL", "SCORED")
	for _, t := range traces {
		fmt.Printf("%-8d %-8s %-9s %6d %4d %6d %10s %10s %10s %10s %10s %8d\n",
			t.Seq, t.Scorer, t.Mode, t.Terms, t.K, t.Batch,
			fmtNS(t.ResolveNS), fmtNS(t.FetchNS), fmtNS(t.TraverseNS), fmtNS(t.MergeNS), fmtNS(t.TotalNS),
			t.DocsScored)
	}
}

// fmtNS renders a nanosecond duration compactly (µs under 10ms, ms
// above).
func fmtNS(ns int64) string {
	switch {
	case ns >= 10_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.0fµs", float64(ns)/1e3)
	}
}

// runAdmin performs one mutation against a -live searchd. The docs file
// may be either a plain JSON array of documents or a corpusgen file
// ({"docs": [...]}).
func runAdmin(server, token, addDocs string, deleteDoc int64) {
	client := search.NewAdminClient(server, nil)
	client.AdminToken = token
	if addDocs != "" {
		f, err := os.Open(addDocs)
		if err != nil {
			log.Fatal(err)
		}
		docs, err := corpus.DecodeDocs(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", addDocs, err)
		}
		ids, err := client.AddDocuments(docs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("indexed %d documents", len(ids))
		if len(ids) > 0 {
			fmt.Printf(" (ids %d..%d)", ids[0], ids[len(ids)-1])
		}
		fmt.Println()
	}
	if deleteDoc >= 0 {
		if deleteDoc > math.MaxInt32 {
			log.Fatalf("document ID %d out of range", deleteDoc)
		}
		if err := client.DeleteDocument(corpus.DocID(deleteDoc)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("deleted document %d\n", deleteDoc)
	}
}
