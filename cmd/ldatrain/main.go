// Command ldatrain fits an LDA topic model to a corpus (JSON from
// corpusgen) with collapsed Gibbs sampling and saves it for the client
// tools — the offline step a trusted party would run once per corpus
// (paper §IV, "a trusted party could derive and certify the topic
// model").
//
// Usage:
//
//	ldatrain -corpus corpus.json -out model.gob -k 24 -iters 150
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"toppriv/internal/corpus"
	"toppriv/internal/lda"
	"toppriv/internal/textproc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ldatrain: ")

	var (
		corpusPath = flag.String("corpus", "corpus.json", "corpus JSON from corpusgen")
		out        = flag.String("out", "model.gob", "output model path")
		k          = flag.Int("k", 24, "number of topics")
		iters      = flag.Int("iters", 150, "Gibbs sweeps")
		seed       = flag.Int64("seed", 1, "sampling seed")
		topWords   = flag.Int("top", 10, "print this many top words per topic (0 = none)")
	)
	flag.Parse()

	f, err := os.Open(*corpusPath)
	if err != nil {
		log.Fatal(err)
	}
	an := textproc.NewAnalyzer()
	c, err := corpus.ReadJSON(f, an, textproc.PruneSpec{MinDocFreq: 2})
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("corpus: %d docs, %d terms", c.NumDocs(), c.VocabSize())

	m, trace, err := lda.Train(c, lda.TrainSpec{
		NumTopics:  *k,
		Iterations: *iters,
		Seed:       *seed,
		LogEvery:   *iters / 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	if n := len(trace.LogLikelihood); n > 0 {
		log.Printf("log-likelihood: %.4f -> %.4f over %d sweeps",
			trace.LogLikelihood[0], trace.LogLikelihood[n-1], *iters)
	}

	of, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer of.Close()
	if err := m.Save(of); err != nil {
		log.Fatal(err)
	}
	log.Printf("model: K=%d, client footprint %.1f KB, saved to %s",
		m.K, float64(m.ClientSizeBytes())/1024, *out)

	if *topWords > 0 {
		for t := 0; t < m.K; t++ {
			fmt.Printf("topic %2d:", t)
			for _, tw := range m.TopWords(t, *topWords) {
				fmt.Printf(" %s", tw.Term)
			}
			fmt.Println()
		}
	}
}
