// Command searchd hosts the enterprise search engine over HTTP: the
// unmodified server of the paper's system model. It serves /search,
// /search/batch (a whole obfuscation cycle per round-trip, every
// member still logged separately), /doc/{id} and /stats, and — like
// any real engine — retains a query log, which is exactly what the
// curious adversary of the threat model gets to analyze.
//
// By default the index is immutable, built once from the corpus. With
// -live the engine runs on the segmented live index instead: POST
// /index and DELETE /doc/{id} mutate the corpus while /search keeps
// serving, the memtable seals into segments as it fills, a background
// compactor merges them, and -data persists the segments (TPIX codec
// per segment plus a manifest) so a restart recovers without
// re-analyzing a single document. With -mmap the recovered segments
// are memory-mapped instead of decoded onto the heap — postings page
// in on traversal — and -cache-bytes pins a decoded-block cache on
// top; GET /stats reports the resulting residency.
//
// On SIGINT/SIGTERM the server drains in-flight requests, and in -live
// mode flushes the memtable into a sealed segment and saves to -data
// before exiting.
//
// The server exposes its telemetry on GET /metrics (Prometheus text
// format) and GET /debug/traces (per-query phase traces); with
// -metrics-addr those are additionally served on a separate admin
// listener, and -pprof mounts net/http/pprof there too.
//
// The distributed tier reuses this one binary in two more modes. With
// -shard the process serves one slice of the corpus: a live store plus
// the /cluster/* wire endpoints (batch search with injected global
// statistics, stats export, gid-addressed ingest and delete) that a
// router drives; it receives documents only by router placement, and
// with -data it persists the store, the gid mapping, and the applied
// journal sequence so a restart — graceful or kill -9 — recovers
// without losing anything saved. With -router -shards=u1,u2,... the
// process holds no index at all: it scatter-gathers every query cycle
// across the shards, merges top-k, degrades gracefully when shards
// fail, and serves the standard /search surface unchanged. Adding
// -journal gives the router a durable placement journal: mutations are
// acknowledged once fsynced there, a health loop re-drives anything a
// crashed or rebooted shard missed, and a router restart replays its
// placement state from disk. SIGINT/SIGTERM drains all modes the same
// way: in-flight requests finish, then shards flush and save, routers
// fsync and compact the journal.
//
// Usage:
//
//	searchd -corpus corpus.json -addr :8080 [-bm25]
//	searchd -live -data ./idx -corpus corpus.json -addr :8080
//	searchd -live -data ./idx -mmap -cache-bytes 8388608 -addr :8080
//	searchd -corpus corpus.json -addr :8080 -metrics-addr 127.0.0.1:9090 -pprof
//	searchd -shard -addr :8081 [-bm25]
//	searchd -shard -data ./shard0 -addr :8081
//	searchd -router -shards=http://h1:8081,http://h2:8081 -addr :8080
//	searchd -router -shards=... -journal ./journal -addr :8080
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"toppriv/internal/cluster"
	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/search"
	"toppriv/internal/segment"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("searchd: ")

	var (
		corpusPath  = flag.String("corpus", "corpus.json", "corpus JSON from corpusgen")
		addr        = flag.String("addr", ":8080", "listen address")
		bm25        = flag.Bool("bm25", false, "score with BM25 instead of tf-idf cosine")
		execFlag    = flag.String("exec", "auto", "query execution: auto, maxscore (DAAT top-k pruning), blockmax (block-max WAND), or exhaustive")
		maxK        = flag.Int("max-k", 0, "cap per-request result count (0 = default 1000)")
		maxBatch    = flag.Int("max-batch", 0, "cap queries per POST /search/batch request (0 = default 64)")
		live        = flag.Bool("live", false, "serve the segmented live index (POST /index, DELETE /doc/{id})")
		dataDir     = flag.String("data", "", "live mode: segment persistence directory (empty = in-memory only)")
		seal        = flag.Int("seal", 0, "live mode: memtable seal threshold in documents (0 = default)")
		mmapFlag    = flag.Bool("mmap", false, "live mode: open saved segments memory-mapped (disk-resident postings; requires -data)")
		cacheBytes  = flag.Int64("cache-bytes", 0, "with -mmap: pin a decoded-block cache of this many bytes (0 = no cache)")
		querylogCap = flag.Int("querylog-cap", 0, "retain at most this many query-log entries (0 = default 100k)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		adminToken  = flag.String("admin-token", "", "live mode: require this bearer token on POST /index and DELETE /doc/{id}")
		metricsAddr = flag.String("metrics-addr", "", "also serve GET /metrics and /debug/traces on a separate admin listener at this address")
		pprofFlag   = flag.Bool("pprof", false, "mount net/http/pprof on the -metrics-addr admin listener")

		shardMode     = flag.Bool("shard", false, "serve one cluster slice: a live store plus the /cluster/* wire endpoints (-data makes it persistent)")
		routerMode    = flag.Bool("router", false, "serve as scatter-gather router over -shards (holds no index)")
		shardList     = flag.String("shards", "", "router mode: comma-separated shard base URLs")
		shardDeadline = flag.Duration("shard-deadline", 2*time.Second, "router mode: per-shard query deadline before degrading")
		shardRetries  = flag.Int("shard-retries", 1, "router mode: transport retries per shard exchange on connection refused/reset")
		journalDir    = flag.String("journal", "", "router mode: placement journal directory (durable acks, crash recovery, shard catch-up)")
		probeEvery    = flag.Duration("probe-interval", time.Second, "router mode with -journal: shard health-probe and catch-up period")
		shardSaveEvry = flag.Int("shard-save-every", 0, "shard mode with -data: background save after this many mutations (0 = default)")
	)
	flag.Parse()

	if *pprofFlag && *metricsAddr == "" {
		log.Fatal("-pprof requires -metrics-addr: profiling endpoints must not share the public listener")
	}
	if *shardMode && *routerMode {
		log.Fatal("-shard and -router are mutually exclusive")
	}
	if *routerMode && (*live || *dataDir != "" || *mmapFlag) {
		log.Fatal("-router holds no index: -live/-data/-mmap do not apply")
	}
	if *journalDir != "" && !*routerMode {
		log.Fatal("-journal requires -router")
	}
	if *shardSaveEvry != 0 && (!*shardMode || *dataDir == "") {
		log.Fatal("-shard-save-every requires -shard with -data")
	}
	if *routerMode && *shardList == "" {
		log.Fatal("-router requires -shards=url1,url2,...")
	}
	if !*routerMode && *shardList != "" {
		log.Fatal("-shards requires -router")
	}
	if *mmapFlag && (!*live || *dataDir == "") {
		log.Fatal("-mmap requires -live and -data: only saved segments can be memory-mapped")
	}
	if *cacheBytes != 0 && !*mmapFlag {
		log.Fatal("-cache-bytes requires -mmap: the block cache only serves mapped segments")
	}

	scoring := vsm.Cosine
	if *bm25 {
		scoring = vsm.BM25
	}
	execMode, err := vsm.ParseExecMode(*execFlag)
	if err != nil {
		log.Fatal(err)
	}
	an := textproc.NewAnalyzer()

	var (
		searcher vsm.Searcher
		docs     []corpus.Document
		store    *segment.Store
		shard    *cluster.Shard
		router   *cluster.Router
	)
	switch {
	case *routerMode:
		shards := strings.Split(*shardList, ",")
		for i := range shards {
			shards[i] = strings.TrimSuffix(strings.TrimSpace(shards[i]), "/")
		}
		rt, err := cluster.New(cluster.Config{
			Shards:        shards,
			Deadline:      *shardDeadline,
			Retry:         search.RetryPolicy{Max: *shardRetries},
			Analyzer:      an,
			JournalDir:    *journalDir,
			ProbeInterval: *probeEvery,
			Logf:          log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		router = rt
		stats := rt.ComputeStats()
		durability := "memory-only placement"
		if *journalDir != "" {
			durability = "journaled placement in " + *journalDir
		}
		log.Printf("router over %d shards: %d docs / %d terms, %s scoring, %v deadline, %s",
			len(shards), stats.NumDocs, stats.NumTerms, rt.Scoring(), *shardDeadline, durability)
		// The serving line reports what the cluster actually scores
		// with, not the (ignored) local flag.
		if rt.Scoring() == vsm.BM25.String() {
			scoring = vsm.BM25
		}
		searcher = rt
	case *shardMode:
		storeCfg := segment.Config{
			Scoring: scoring, ExecMode: execMode, Analyzer: an,
			SealThreshold: *seal, Logf: log.Printf,
		}
		if *dataDir != "" {
			sh, err := cluster.OpenShard(storeCfg, cluster.ShardConfig{
				Dir: *dataDir, SaveEvery: *shardSaveEvry, Logf: log.Printf,
			})
			if err != nil {
				log.Fatal(err)
			}
			shard = sh
			store = sh.Store()
			if store.Scoring() != scoring {
				log.Printf("note: -data manifest pins %s scoring, overriding the flag", store.Scoring())
				scoring = store.Scoring()
			}
			log.Printf("shard serving %d docs from %s (%s scoring); awaiting router placement",
				store.NumDocs(), *dataDir, scoring)
		} else {
			st, err := segment.Open(storeCfg)
			if err != nil {
				log.Fatal(err)
			}
			store = st
			shard = cluster.NewShard(st)
			log.Printf("shard starting empty, in-memory (%s scoring); awaiting router placement", scoring)
		}
		searcher = store
	case *live:
		store = openLiveStore(an, scoring, execMode, *corpusPath, *dataDir, *seal, *mmapFlag, *cacheBytes)
		searcher = store
		// A recovered manifest's scoring overrides the flag; report what
		// is actually served.
		if store.Scoring() != scoring {
			log.Printf("note: -data manifest pins %s scoring, overriding the flag", store.Scoring())
			scoring = store.Scoring()
		}
	default:
		c := loadCorpus(*corpusPath, an)
		idx, err := index.Build(c)
		if err != nil {
			log.Fatal(err)
		}
		engine, err := vsm.NewEngine(idx, an, scoring)
		if err != nil {
			log.Fatal(err)
		}
		engine.SetExecMode(execMode)
		stats := idx.ComputeStats()
		log.Printf("immutable index: %d docs / %d terms", stats.NumDocs, stats.NumTerms)
		searcher = engine
		docs = c.Docs
	}

	srv, err := search.NewServer(searcher, docs)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetQueryLogCap(*querylogCap)
	srv.SetAdminToken(*adminToken)
	srv.SetMaxK(*maxK)
	srv.SetMaxBatch(*maxBatch)
	if shard != nil {
		shard.Mount(srv)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	mode := "immutable"
	switch {
	case *routerMode:
		mode = "router"
	case *shardMode:
		mode = "shard"
	case *live:
		mode = "live"
	}
	log.Printf("serving (%s, %s scoring, %s exec) on %s", mode, scoring, execMode, ln.Addr())

	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	// The admin listener carries the operator surface — metrics, phase
	// traces, and (opted in) pprof — on an address that can stay behind
	// the firewall while the search listener faces users.
	var adminSrv *http.Server
	if *metricsAddr != "" {
		adminLn, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		adminMux := http.NewServeMux()
		adminMux.Handle("/metrics", srv)
		adminMux.Handle("/debug/traces", srv)
		if *pprofFlag {
			adminMux.HandleFunc("/debug/pprof/", pprof.Index)
			adminMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			adminMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			adminMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			adminMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		adminSrv = &http.Server{
			Handler:           adminMux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		what := "metrics"
		if *pprofFlag {
			what = "metrics+pprof"
		}
		log.Printf("admin (%s) on %s", what, adminLn.Addr())
		go func() {
			if err := adminSrv.Serve(adminLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("admin serve: %v", err)
			}
		}()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case sig := <-sigCh:
		log.Printf("caught %v, draining (max %v)", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("drain: %v", err)
	}
	if adminSrv != nil {
		if err := adminSrv.Shutdown(ctx); err != nil {
			log.Printf("admin drain: %v", err)
		}
	}
	if serveErr := <-errCh; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		log.Printf("serve: %v", serveErr)
	}
	switch {
	case router != nil:
		// Drained routers fsync and compact the placement journal so a
		// restart replays from the snapshot alone.
		if err := router.Close(); err != nil {
			log.Printf("router close: %v", err)
		}
	case shard != nil:
		// Shard drain mirrors live mode: close against stragglers, then
		// the final save writes the store and the gid table together.
		if err := shard.Close(); err != nil {
			log.Printf("shard close: %v", err)
		} else if shard.Persistent() {
			log.Printf("saved %d segments and gid table to %s", store.NumSegments(), *dataDir)
		}
	case store != nil:
		// Close first: any straggler that outlived the drain now gets
		// ErrClosed instead of an acknowledgment its document would lose
		// on exit. Save (which seals the memtable itself) then writes
		// everything that was ever acknowledged.
		store.Close()
		if *dataDir != "" {
			if err := store.Save(*dataDir); err != nil {
				log.Printf("save: %v", err)
			} else {
				log.Printf("saved %d segments to %s", store.NumSegments(), *dataDir)
			}
		}
	}
	log.Print("bye")
}

// openLiveStore recovers a saved store from dataDir when a manifest
// exists; otherwise it opens a fresh store and, when the corpus file is
// readable, bulk-loads it.
func openLiveStore(an *textproc.Analyzer, scoring vsm.Scoring, execMode vsm.ExecMode, corpusPath, dataDir string, seal int, mapped bool, cacheBytes int64) *segment.Store {
	cfg := segment.Config{
		Scoring: scoring, ExecMode: execMode, Analyzer: an, SealThreshold: seal,
		Mapped: mapped, CacheBytes: cacheBytes, Logf: log.Printf,
	}
	if dataDir != "" {
		if _, err := os.Stat(filepath.Join(dataDir, "MANIFEST.json")); err == nil {
			store, err := segment.Load(dataDir, cfg)
			if err != nil {
				log.Fatal(err)
			}
			s := store.Stats()
			how := "no reindex"
			if mapped {
				how = "no reindex, mmap"
			}
			log.Printf("recovered %d segments / %d live docs from %s (%s)",
				s.Segments, s.LiveDocs, dataDir, how)
			return store
		}
	}
	store, err := segment.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(corpusPath)
	if err != nil {
		// Only a genuinely absent corpus means "start empty"; anything
		// else (permissions, a directory, ...) must not silently serve
		// zero documents.
		if !os.IsNotExist(err) {
			log.Fatal(err)
		}
		log.Printf("live store starting empty (no %s)", corpusPath)
		return store
	}
	// Decode the raw documents only — Add analyzes them exactly once
	// on the way into the memtable.
	docs, err := corpus.DecodeDocs(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := store.Add(docs...); err != nil {
		log.Fatal(err)
	}
	log.Printf("live store seeded with %d docs from %s", store.NumDocs(), corpusPath)
	return store
}

// loadCorpus reads and analyzes the corpus for the immutable path.
func loadCorpus(path string, an *textproc.Analyzer) *corpus.Corpus {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	c, err := corpus.ReadJSON(f, an, textproc.PruneSpec{MinDocFreq: 2})
	if err != nil {
		log.Fatal(err)
	}
	return c
}
