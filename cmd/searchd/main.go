// Command searchd hosts the enterprise search engine over HTTP: the
// unmodified server of the paper's system model. It serves /search,
// /doc/{id} and /stats, and — like any real engine — retains a query
// log, which is exactly what the curious adversary of the threat model
// gets to analyze.
//
// Usage:
//
//	searchd -corpus corpus.json -addr :8080 [-bm25]
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"toppriv/internal/corpus"
	"toppriv/internal/index"
	"toppriv/internal/search"
	"toppriv/internal/textproc"
	"toppriv/internal/vsm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("searchd: ")

	var (
		corpusPath = flag.String("corpus", "corpus.json", "corpus JSON from corpusgen")
		addr       = flag.String("addr", ":8080", "listen address")
		bm25       = flag.Bool("bm25", false, "score with BM25 instead of tf-idf cosine")
	)
	flag.Parse()

	f, err := os.Open(*corpusPath)
	if err != nil {
		log.Fatal(err)
	}
	an := textproc.NewAnalyzer()
	c, err := corpus.ReadJSON(f, an, textproc.PruneSpec{MinDocFreq: 2})
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	idx, err := index.Build(c)
	if err != nil {
		log.Fatal(err)
	}
	scoring := vsm.Cosine
	if *bm25 {
		scoring = vsm.BM25
	}
	engine, err := vsm.NewEngine(idx, an, scoring)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := search.NewServer(engine, c.Docs)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	stats := idx.ComputeStats()
	log.Printf("serving %d docs / %d terms (%s scoring) on %s",
		stats.NumDocs, stats.NumTerms, scoring, ln.Addr())

	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(httpSrv.Serve(ln))
}
