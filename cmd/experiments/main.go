// Command experiments regenerates every table and figure of the paper's
// evaluation (§V) against the synthetic laboratory. Run it with no
// flags to produce everything; use -fig / -table to select one
// artifact. Output is aligned text; -csv writes sweep data for external
// plotting.
//
// Usage:
//
//	experiments                 # everything (a few minutes)
//	experiments -fig 2          # Figure 2 only
//	experiments -table attacks  # §IV-D resilience table only
//	experiments -quick          # small environment for smoke runs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"toppriv/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		fig    = flag.Int("fig", 0, "regenerate one figure (2..6); 0 = all")
		table  = flag.String("table", "", "regenerate one table (2, 3, 4, pir, quality, effectiveness, ablations, attacks); empty = all")
		quick  = flag.Bool("quick", false, "small environment (fast, noisier)")
		seed   = flag.Int64("seed", 1, "experiment seed")
		csvOut = flag.String("csv", "", "write Figure 2/3 sweep points as CSV to this file")
	)
	flag.Parse()

	spec := experiment.EnvSpec{Seed: *seed}
	if *quick {
		spec.NumDocs = 500
		spec.NumTopics = 12
		spec.Ks = []int{6, 12, 18}
		spec.NumQueries = 40
		spec.TrainIters = 60
	}

	start := time.Now()
	log.Printf("building environment (%d docs, %d topics, models %v)…",
		orDefault(spec.NumDocs, 2000), orDefault(spec.NumTopics, 32), spec.Ks)
	env, err := experiment.NewEnv(spec)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("environment ready in %v (vocab %d)", time.Since(start).Round(time.Millisecond), env.Corpus.VocabSize())

	runAll := *fig == 0 && *table == ""
	out := os.Stdout

	var csvPoints []experiment.Point
	if runAll || *fig == 2 {
		points, err := experiment.Fig2(env, *seed)
		if err != nil {
			log.Fatal(err)
		}
		experiment.PrintPoints(out, "Figure 2: TopPriv with ε1 = 5%, varying ε2", points)
		fmt.Fprintln(out)
		if err := experiment.ExposureChart("Figure 2a shape: exposure vs ε2", points).Render(out); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
		csvPoints = append(csvPoints, points...)
	}
	if runAll || *fig == 3 {
		points, err := experiment.Fig3(env, *seed)
		if err != nil {
			log.Fatal(err)
		}
		experiment.PrintPoints(out, "Figure 3: TopPriv with ε1 = ε2", points)
		fmt.Fprintln(out)
		csvPoints = append(csvPoints, points...)
	}
	if runAll || *fig == 4 {
		points, err := experiment.Fig4(env, *seed)
		if err != nil {
			log.Fatal(err)
		}
		experiment.PrintPDXPoints(out, points)
		fmt.Fprintln(out)
	}
	if runAll || *fig == 5 {
		points, err := experiment.Fig5(env, *seed)
		if err != nil {
			log.Fatal(err)
		}
		experiment.PrintRatioPoints(out, points)
		fmt.Fprintln(out)
		if err := experiment.RatioChart(points).Render(out); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}
	if runAll || *fig == 6 {
		points, err := experiment.Fig6(env, nil)
		if err != nil {
			log.Fatal(err)
		}
		experiment.PrintScalePoints(out, points)
		fmt.Fprintln(out)
	}

	if runAll || *table == "2" {
		cols, err := experiment.Table2(env, nil, 20)
		if err != nil {
			log.Fatal(err)
		}
		experiment.PrintTopicColumns(out, "Table II: sample topics in the default model", cols)
		fmt.Fprintln(out)
	}
	if runAll || *table == "3" {
		cols, err := experiment.Table3(env, "medicine", 20)
		if err != nil {
			log.Fatal(err)
		}
		experiment.PrintTopicColumns(out, "Table III: the medicine topic across models", cols)
		fmt.Fprintln(out)
	}
	if runAll || *table == "4" {
		cols, err := experiment.Table4(env, 20)
		if err != nil {
			log.Fatal(err)
		}
		experiment.PrintTopicColumns(out, "Table IV: an undersized model is indistinct", cols)
		fmt.Fprintln(out)
	}
	if runAll || *table == "pir" {
		experiment.PrintPIR(out, experiment.PIRTable(env))
		fmt.Fprintln(out)
	}
	if runAll || *table == "quality" {
		rows, err := experiment.RetrievalQuality(env, 10, *seed)
		if err != nil {
			log.Fatal(err)
		}
		experiment.PrintQuality(out, rows, 10)
		fmt.Fprintln(out)
	}
	if runAll || *table == "effectiveness" {
		rows, err := experiment.Effectiveness(env, *seed)
		if err != nil {
			log.Fatal(err)
		}
		experiment.PrintEffectiveness(out, rows)
		fmt.Fprintln(out)
	}
	if runAll || *table == "ablations" {
		rows, err := experiment.Ablations(env, 0.05, 0.01, *seed)
		if err != nil {
			log.Fatal(err)
		}
		experiment.PrintAblations(out, rows)
		fmt.Fprintln(out)
	}
	if runAll || *table == "attacks" {
		rows, err := experiment.AttackTable(env, 0.05, 0.01, *seed)
		if err != nil {
			log.Fatal(err)
		}
		experiment.PrintAttacks(out, rows)
		fmt.Fprintln(out)
	}

	if *csvOut != "" && len(csvPoints) > 0 {
		f, err := os.Create(*csvOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiment.WritePointsCSV(f, csvPoints); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("sweep CSV written to %s", *csvOut)
	}
	log.Printf("done in %v", time.Since(start).Round(time.Millisecond))
}

func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}
