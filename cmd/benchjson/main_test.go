package main

import (
	"regexp"
	"strings"
	"testing"
)

func TestParseLineStandard(t *testing.T) {
	b, ok := parseLine("BenchmarkSearch/cosine/maxscore-8         \t   26794\t     47863 ns/op\t       175.7 docs_pruned/op\t        75.07 docs_scored/op\t     184 B/op\t       2 allocs/op")
	if !ok {
		t.Fatal("standard line must parse")
	}
	if b.Name != "BenchmarkSearch/cosine/maxscore" {
		t.Errorf("Name = %q, want cpu suffix stripped", b.Name)
	}
	if b.N != 26794 {
		t.Errorf("N = %d", b.N)
	}
	want := map[string]float64{
		"ns/op": 47863, "docs_pruned/op": 175.7, "docs_scored/op": 75.07,
		"B/op": 184, "allocs/op": 2,
	}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Errorf("Metrics[%q] = %v, want %v", unit, b.Metrics[unit], v)
		}
	}
}

// TestParseLineCustomMetrics pins the fix for the silent-drop bug: a
// line carrying custom b.ReportMetric units — including ones with odd
// characters or a stray non-numeric token in the middle — must still
// produce every parsable metric pair instead of being discarded.
func TestParseLineCustomMetrics(t *testing.T) {
	b, ok := parseLine("BenchmarkFig3-4  2  912345 ns/op  14.2 Usize@0.5%  3.00 maxrank@0.5%  5.1 exposure%")
	if !ok {
		t.Fatal("custom-metric line must parse")
	}
	for unit, v := range map[string]float64{
		"ns/op": 912345, "Usize@0.5%": 14.2, "maxrank@0.5%": 3, "exposure%": 5.1,
	} {
		if b.Metrics[unit] != v {
			t.Errorf("Metrics[%q] = %v, want %v", unit, b.Metrics[unit], v)
		}
	}

	// A stray token skips one field, not the line.
	b, ok = parseLine("BenchmarkOdd-2  10  100 ns/op  garbage  7 widgets/op")
	if !ok {
		t.Fatal("line with a stray token must still parse")
	}
	if b.Metrics["ns/op"] != 100 || b.Metrics["widgets/op"] != 7 {
		t.Errorf("Metrics = %v, want ns/op and widgets/op captured", b.Metrics)
	}
}

func TestParseLineRejectsNonBenchmarks(t *testing.T) {
	for _, line := range []string{
		"ok  \ttoppriv\t9.2s",
		"PASS",
		"goos: linux",
		"BenchmarkBad notanumber 12 ns/op",
		"BenchmarkShort 5",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q must not parse", line)
		}
	}
}

func TestStripCPUSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkSearch/cosine/maxscore-8": "BenchmarkSearch/cosine/maxscore",
		"BenchmarkSearch/cosine/maxscore":   "BenchmarkSearch/cosine/maxscore",
		"BenchmarkX-12":                     "BenchmarkX",
		"BenchmarkX-a8":                     "BenchmarkX-a8",
		"BenchmarkX-":                       "BenchmarkX-",
	} {
		if got := stripCPUSuffix(in); got != want {
			t.Errorf("stripCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func bench(name string, ns, docsScored float64) Benchmark {
	m := map[string]float64{"ns/op": ns}
	if docsScored > 0 {
		m["docs_scored/op"] = docsScored
	}
	return Benchmark{Name: name, N: 1, Metrics: m}
}

func TestCompareGatesNsOpRegressions(t *testing.T) {
	oldB := []Benchmark{
		bench("BenchmarkSearch/cosine/blockmax", 40000, 60),
		bench("BenchmarkSearch/bm25/maxscore", 30000, 55),
		bench("BenchmarkLiveIndex/single", 36000, 0),
	}
	newB := []Benchmark{
		bench("BenchmarkSearch/cosine/blockmax", 49000, 60),  // within 25%
		bench("BenchmarkSearch/bm25/maxscore", 40000, 80),    // +33% ns: fail; docs_scored +45%: warn
		bench("BenchmarkLiveIndex/single", 80000, 0),         // ungated: warn only
		bench("BenchmarkSearch/cosine/exhaustive", 10000, 0), // addition: ignored
	}
	failures, warnings := compareBenchmarks(oldB, newB, 0.25, 0.10, regexp.MustCompile("^BenchmarkSearch"))
	if len(failures) != 1 || !strings.Contains(failures[0], "bm25/maxscore") {
		t.Errorf("failures = %v, want exactly the bm25/maxscore ns/op regression", failures)
	}
	foundLive, foundDS := false, false
	for _, w := range warnings {
		if strings.Contains(w, "BenchmarkLiveIndex/single") {
			foundLive = true
		}
		if strings.Contains(w, "docs_scored") {
			foundDS = true
		}
	}
	if !foundLive || !foundDS {
		t.Errorf("warnings = %v, want ungated ns/op and docs_scored entries", warnings)
	}
}

func TestCompareMissingGatedEntryFails(t *testing.T) {
	oldB := []Benchmark{bench("BenchmarkSearch/cosine/blockmax", 40000, 0)}
	failures, _ := compareBenchmarks(oldB, []Benchmark{bench("BenchmarkOther", 1, 0)}, 0.25, 0.10, regexp.MustCompile("^BenchmarkSearch"))
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Errorf("failures = %v, want a missing-entry failure", failures)
	}
}

func TestCompareCleanRun(t *testing.T) {
	oldB := []Benchmark{
		bench("BenchmarkSearch/cosine/blockmax", 40000, 60),
		bench("BenchmarkLiveIndex/segmented4", 66000, 400),
	}
	newB := []Benchmark{
		bench("BenchmarkSearch/cosine/blockmax", 41000, 58),
		bench("BenchmarkLiveIndex/segmented4", 70000, 410),
	}
	failures, warnings := compareBenchmarks(oldB, newB, 0.25, 0.10, regexp.MustCompile("^BenchmarkSearch"))
	if len(failures) != 0 || len(warnings) != 0 {
		t.Errorf("clean run produced failures %v warnings %v", failures, warnings)
	}
}

// sizeBench builds a BenchmarkIndexSize-style entry.
func sizeBench(name string, bytesPerDoc, nsOp float64) Benchmark {
	return Benchmark{Name: name, N: 1, Metrics: map[string]float64{
		"index_bytes/doc": bytesPerDoc,
		"ns/op":           nsOp,
	}}
}

// TestCompareSizeGate checks the index_bytes/doc rules: growth beyond
// the size tolerance hard-fails regardless of the gate prefix, growth
// within it passes, the wildly varying ns/op of a size benchmark is
// ignored, and a baseline size entry missing from the new run fails.
func TestCompareSizeGate(t *testing.T) {
	oldB := []Benchmark{sizeBench("BenchmarkIndexSize", 125, 7e9)}
	// +8% with a 1000x ns/op swing: clean.
	failures, warnings := compareBenchmarks(oldB,
		[]Benchmark{sizeBench("BenchmarkIndexSize", 135, 7e6)}, 0.25, 0.10, regexp.MustCompile("^BenchmarkSearch"))
	if len(failures) != 0 || len(warnings) != 0 {
		t.Errorf("within-tolerance size growth flagged: failures %v warnings %v", failures, warnings)
	}
	// +20%: hard failure even though the name is outside the gate prefix.
	failures, _ = compareBenchmarks(oldB,
		[]Benchmark{sizeBench("BenchmarkIndexSize", 150, 7e9)}, 0.25, 0.10, regexp.MustCompile("^BenchmarkSearch"))
	if len(failures) != 1 || !strings.Contains(failures[0], "index_bytes/doc") {
		t.Errorf("failures = %v, want one index_bytes/doc size failure", failures)
	}
	// Size entry vanished entirely: hard failure.
	failures, _ = compareBenchmarks(oldB,
		[]Benchmark{bench("BenchmarkSearch/cosine/blockmax", 40000, 60)}, 0.25, 0.10, regexp.MustCompile("^BenchmarkSearch"))
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Errorf("failures = %v, want a missing size-entry failure", failures)
	}
	// New run lost the metric but kept the benchmark: hard failure.
	failures, _ = compareBenchmarks(oldB,
		[]Benchmark{bench("BenchmarkIndexSize", 100, 0)}, 0.25, 0.10, regexp.MustCompile("^BenchmarkSearch"))
	if len(failures) != 1 || !strings.Contains(failures[0], "index_bytes/doc missing") {
		t.Errorf("failures = %v, want a missing-metric failure", failures)
	}
}

// TestCompareDefaultGateRegexp pins the default gate: the decode
// micro-benchmarks and the mapped-traversal benchmarks regress loudly
// alongside the search benchmarks, while a name that merely contains
// (not starts with) a gated word stays a warning.
func TestCompareDefaultGateRegexp(t *testing.T) {
	gate := regexp.MustCompile(defaultGate)
	oldB := []Benchmark{
		bench("BenchmarkDecodeTraversal/w8", 1000, 0),
		bench("BenchmarkSeekAfterSkip", 2000, 0),
		bench("BenchmarkTraversalCold", 3000, 0),
		bench("BenchmarkTraversalWarm/mapped-cached", 3000, 0),
		bench("BenchmarkResearchIndexing", 500, 0),
	}
	newB := []Benchmark{
		bench("BenchmarkDecodeTraversal/w8", 2000, 0),
		bench("BenchmarkSeekAfterSkip", 4000, 0),
		bench("BenchmarkTraversalCold", 6000, 0),
		bench("BenchmarkTraversalWarm/mapped-cached", 6000, 0),
		bench("BenchmarkResearchIndexing", 1000, 0),
	}
	failures, warnings := compareBenchmarks(oldB, newB, 0.25, 0.10, gate)
	if len(failures) != 4 {
		t.Errorf("failures = %v, want DecodeTraversal, SeekAfterSkip and both Traversal rows gated", failures)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "ResearchIndexing") {
		t.Errorf("warnings = %v, want the anchored-out name to warn only", warnings)
	}
}

// residentBench builds a BenchmarkTraversal-style entry carrying both
// a timing and a residency metric.
func residentBench(name string, nsOp, resPerDoc float64) Benchmark {
	return Benchmark{Name: name, N: 1, Metrics: map[string]float64{
		"ns/op":              nsOp,
		"resident_bytes/doc": resPerDoc,
	}}
}

// TestCompareResidentGate checks the resident_bytes/doc rules: the
// metric hard-fails beyond the size tolerance regardless of the gate
// regexp, and — unlike index_bytes/doc rows — the same row's ns/op
// still gates too, so one entry can fail on either axis.
func TestCompareResidentGate(t *testing.T) {
	oldB := []Benchmark{residentBench("BenchmarkTraversalWarm/mapped-cached", 50000, 130)}
	gate := regexp.MustCompile(defaultGate)
	// Both axes within tolerance: clean.
	failures, warnings := compareBenchmarks(oldB,
		[]Benchmark{residentBench("BenchmarkTraversalWarm/mapped-cached", 55000, 138)}, 0.25, 0.10, gate)
	if len(failures) != 0 || len(warnings) != 0 {
		t.Errorf("within-tolerance run flagged: failures %v warnings %v", failures, warnings)
	}
	// Residency +23%: hard failure even under a gate regexp that does
	// not match the name.
	failures, _ = compareBenchmarks(oldB,
		[]Benchmark{residentBench("BenchmarkTraversalWarm/mapped-cached", 50000, 160)}, 0.25, 0.10,
		regexp.MustCompile("^BenchmarkNothing"))
	if len(failures) != 1 || !strings.Contains(failures[0], "resident_bytes/doc") {
		t.Errorf("failures = %v, want one resident_bytes/doc failure", failures)
	}
	// Residency flat but ns/op +40%: the timing gate still applies.
	failures, _ = compareBenchmarks(oldB,
		[]Benchmark{residentBench("BenchmarkTraversalWarm/mapped-cached", 70000, 130)}, 0.25, 0.10, gate)
	if len(failures) != 1 || !strings.Contains(failures[0], "ns/op") {
		t.Errorf("failures = %v, want one ns/op failure", failures)
	}
	// Both regressed: both axes reported.
	failures, _ = compareBenchmarks(oldB,
		[]Benchmark{residentBench("BenchmarkTraversalWarm/mapped-cached", 70000, 160)}, 0.25, 0.10, gate)
	if len(failures) != 2 {
		t.Errorf("failures = %v, want residency and timing failures", failures)
	}
	// Metric lost while the benchmark survives: hard failure.
	failures, _ = compareBenchmarks(oldB,
		[]Benchmark{bench("BenchmarkTraversalWarm/mapped-cached", 50000, 0)}, 0.25, 0.10, gate)
	if len(failures) != 1 || !strings.Contains(failures[0], "resident_bytes/doc missing") {
		t.Errorf("failures = %v, want a missing-metric failure", failures)
	}
}
