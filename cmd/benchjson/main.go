// Command benchjson converts `go test -bench` text output into a JSON
// artifact, so CI can upload a machine-readable performance record
// (ns/op, allocs/op, and custom metrics like docs_scored/op) and the
// perf trajectory of the query engine can be tracked across commits.
// It also compares two such artifacts and exits non-zero on
// regression, which is what lets CI gate a PR on the committed
// baseline.
//
// Usage:
//
//	go test -run xxx -bench BenchmarkSearch -benchmem . | benchjson -o BENCH_search.json
//	benchjson -compare BENCH_search.json BENCH_new.json -tolerance 0.25
//
// Convert mode: non-benchmark lines (ok/PASS/log output) pass through
// unparsed; a run that produced no benchmark lines is an error, so a
// silently skipped bench step fails the pipeline instead of uploading
// an empty artifact. Every `<value> <unit>` metric pair on a
// benchmark line is captured generically — custom b.ReportMetric
// units round-trip unchanged, and a stray token skips one field, not
// the whole line.
//
// Compare mode: benchmarks are matched by name with the -cpu suffix
// stripped (machines differ). Entries whose name matches the -gate
// regexp (default covers the search benchmarks plus the decode
// micro-benchmarks) fail the comparison when their ns/op grew by more
// than -tolerance (fraction, default 0.25) or when they disappeared
// from the new results; everything else —
// other benchmarks, and work metrics like docs_scored/op — only
// warns. Entries carrying an index_bytes/doc metric (the
// BenchmarkIndexSize memory-footprint row) are gated on that metric
// instead: growth beyond -size-tolerance (default 0.10) always hard-
// fails — index size is machine-independent, so there is no hardware
// excuse — while their ns/op (dominated by one-time environment
// setup) is ignored. Entries carrying resident_bytes/doc (the
// BenchmarkTraversalCold/Warm store-residency rows) gate on that
// metric with the same size tolerance in addition to their ns/op —
// those rows are real traversal timings, not setup shells. Exit
// status 1 on any failure.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// defaultGate gates the end-to-end search benchmarks, the postings
// decode micro-benchmarks, and the mapped-store traversal benchmarks;
// everything else (live-index, instrumented variants) only warns on
// regression.
const defaultGate = "^Benchmark(Search|DecodeTraversal|SeekAfterSkip|TraversalCold|TraversalWarm)"

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including the sub-benchmark
	// path, with the -cpu suffix stripped so artifacts from machines
	// with different core counts stay comparable.
	Name string `json:"name"`
	// N is the iteration count the harness settled on.
	N int64 `json:"n"`
	// Metrics maps unit → per-op value, e.g. "ns/op", "allocs/op",
	// "docs_scored/op".
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare two benchmark JSON files (old new) and exit non-zero on regression")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op growth before a gated benchmark counts as regressed")
	sizeTolerance := flag.Float64("size-tolerance", 0.10, "allowed fractional index_bytes/doc growth before a size benchmark hard-fails")
	gate := flag.String("gate", defaultGate, "regexp over benchmark names whose regressions fail the comparison (others only warn)")
	flag.Parse()

	if *compare {
		files := flag.Args()
		if len(files) > 2 {
			// The flag package stops at the first positional argument;
			// re-parse the remainder so the documented shape
			// `benchjson -compare old.json new.json -tolerance 0.25`
			// works with the flags trailing.
			if err := flag.CommandLine.Parse(files[2:]); err != nil {
				log.Fatal(err)
			}
			if flag.CommandLine.NArg() > 0 {
				log.Fatalf("unexpected arguments after flags: %v", flag.CommandLine.Args())
			}
			files = files[:2]
		}
		runCompare(files, *tolerance, *sizeTolerance, *gate)
		return
	}

	var benches []Benchmark
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			benches = append(benches, b)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(benches) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(benches); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(benches))
}

// parseLine parses one `Benchmark<Name>-P  N  v1 u1  v2 u2 ...` line.
// Metric pairs are collected generically; a token that is not a float
// is skipped on its own instead of discarding the line, so custom
// metrics and odd spacing cannot silently drop a benchmark.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: stripCPUSuffix(fields[0]), N: n, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			i++
			continue
		}
		b.Metrics[fields[i+1]] = v
		i += 2
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// stripCPUSuffix removes the trailing "-<digits>" GOMAXPROCS marker
// from a benchmark name, if present.
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, r := range name[i+1:] {
		if r < '0' || r > '9' {
			return name
		}
	}
	return name[:i]
}

// runCompare loads two artifacts and exits non-zero when the new one
// regresses a gated benchmark.
func runCompare(args []string, tolerance, sizeTolerance float64, gate string) {
	if len(args) != 2 {
		log.Fatal("-compare needs exactly two arguments: old.json new.json")
	}
	gateRE, err := regexp.Compile(gate)
	if err != nil {
		log.Fatalf("-gate: %v", err)
	}
	oldB, err := loadBenchmarks(args[0])
	if err != nil {
		log.Fatal(err)
	}
	newB, err := loadBenchmarks(args[1])
	if err != nil {
		log.Fatal(err)
	}
	failures, warnings := compareBenchmarks(oldB, newB, tolerance, sizeTolerance, gateRE)
	for _, w := range warnings {
		fmt.Fprintf(os.Stderr, "benchjson: warn: %s\n", w)
	}
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "benchjson: FAIL: %s\n", f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d baseline benchmarks compared, no gated regressions (tolerance %.0f%%)\n",
		len(oldB), tolerance*100)
}

func loadBenchmarks(path string) ([]Benchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var benches []Benchmark
	if err := json.Unmarshal(data, &benches); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(benches) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return benches, nil
}

// sizeMetric is the machine-independent memory-footprint metric
// (BenchmarkIndexSize): postings bytes per indexed document. Entries
// carrying it are size-only rows — their ns/op is setup noise.
const sizeMetric = "index_bytes/doc"

// residentMetric is the heap-residency footprint of the traversal
// benchmarks (BenchmarkTraversalCold/Warm): heap bytes per document a
// loaded store actually pins. Unlike sizeMetric rows, these rows are
// real traversal timings, so the metric gates IN ADDITION to ns/op,
// not instead of it.
const residentMetric = "resident_bytes/doc"

// compareBenchmarks diffs new against the old baseline. ns/op growth
// beyond the tolerance fails gated entries (gate regexp match) and
// warns for the rest; docs_scored/op growth always only warns —
// scoring more documents is a pruning regression worth flagging, but
// it is machine-independent work, not wall-clock, so it never blocks
// by itself. Entries carrying the index_bytes/doc size metric are
// compared on that metric alone and hard-fail beyond sizeTolerance
// regardless of the gate regexp (bytes don't depend on the runner).
// Entries present only in the new run are additions and pass
// silently. Names are matched as stored: parseLine already normalized
// away the -cpu suffix, and stripping again here would mangle
// sub-benchmark names that legitimately end in "-<digits>".
func compareBenchmarks(oldB, newB []Benchmark, tolerance, sizeTolerance float64, gate *regexp.Regexp) (failures, warnings []string) {
	latest := make(map[string]Benchmark, len(newB))
	for _, b := range newB {
		latest[b.Name] = b
	}
	flag := func(gated bool, format string, args ...interface{}) {
		msg := fmt.Sprintf(format, args...)
		if gated {
			failures = append(failures, msg)
		} else {
			warnings = append(warnings, msg)
		}
	}
	for _, ob := range oldB {
		name := ob.Name
		if oldSz, ok := ob.Metrics[sizeMetric]; ok && oldSz > 0 {
			nb, ok := latest[name]
			if !ok {
				flag(true, "%s: missing from new results", name)
				continue
			}
			newSz, ok := nb.Metrics[sizeMetric]
			if !ok {
				flag(true, "%s: %s missing from new results", name, sizeMetric)
				continue
			}
			if newSz > oldSz*(1+sizeTolerance) {
				flag(true, "%s: %s %.1f → %.1f (+%.1f%%, tolerance %.0f%%) — index footprint regressed",
					name, sizeMetric, oldSz, newSz, (newSz/oldSz-1)*100, sizeTolerance*100)
			}
			// ns/op of a size benchmark is environment-setup noise;
			// nothing else to compare.
			continue
		}
		gated := gate.MatchString(name)
		nb, ok := latest[name]
		if !ok {
			flag(gated, "%s: missing from new results", name)
			continue
		}
		if oldRes, ok := ob.Metrics[residentMetric]; ok && oldRes > 0 {
			// Residency is machine-independent, so like index_bytes/doc it
			// hard-fails beyond sizeTolerance regardless of the gate
			// regexp; the row's ns/op is still compared below.
			if newRes, ok := nb.Metrics[residentMetric]; !ok {
				flag(true, "%s: %s missing from new results", name, residentMetric)
			} else if newRes > oldRes*(1+sizeTolerance) {
				flag(true, "%s: %s %.1f → %.1f (+%.1f%%, tolerance %.0f%%) — store residency regressed",
					name, residentMetric, oldRes, newRes, (newRes/oldRes-1)*100, sizeTolerance*100)
			}
		}
		if oldNS, ok := ob.Metrics["ns/op"]; ok && oldNS > 0 {
			if newNS, ok := nb.Metrics["ns/op"]; ok && newNS > oldNS*(1+tolerance) {
				flag(gated, "%s: ns/op %.0f → %.0f (+%.1f%%, tolerance %.0f%%)",
					name, oldNS, newNS, (newNS/oldNS-1)*100, tolerance*100)
			}
		}
		if oldDS, ok := ob.Metrics["docs_scored/op"]; ok && oldDS > 0 {
			if newDS, ok := nb.Metrics["docs_scored/op"]; ok && newDS > oldDS*(1+tolerance) {
				warnings = append(warnings, fmt.Sprintf(
					"%s: docs_scored/op %.1f → %.1f (+%.1f%%) — pruning got weaker",
					name, oldDS, newDS, (newDS/oldDS-1)*100))
			}
		}
	}
	return failures, warnings
}
