// Command benchjson converts `go test -bench` text output into a JSON
// artifact, so CI can upload a machine-readable performance record
// (ns/op, allocs/op, and custom metrics like docs_scored/op) and the
// perf trajectory of the query engine can be tracked across commits.
//
// Usage:
//
//	go test -run xxx -bench BenchmarkSearch -benchmem . | benchjson -o BENCH_search.json
//
// Non-benchmark lines (ok/PASS/log output) pass through unparsed; a
// run that produced no benchmark lines is an error, so a silently
// skipped bench step fails the pipeline instead of uploading an empty
// artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -cpu suffix, e.g. "BenchmarkSearch/cosine/maxscore-8".
	Name string `json:"name"`
	// N is the iteration count the harness settled on.
	N int64 `json:"n"`
	// Metrics maps unit → per-op value, e.g. "ns/op", "allocs/op",
	// "docs_scored/op".
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var benches []Benchmark
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			benches = append(benches, b)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(benches) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(benches); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(benches))
}

// parseLine parses one `Benchmark<Name>-P  N  v1 u1  v2 u2 ...` line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], N: n, Metrics: map[string]float64{}}
	// The remainder alternates value/unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}
