package toppriv

// End-to-end integration test of the command-line tools: build all the
// binaries, generate a corpus, train a model, host the server, and run
// an obfuscated query through topprivctl — the full deployment pipeline
// a user would follow.

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// buildTools compiles all cmd binaries into a temp dir once.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator),
		"./cmd/corpusgen", "./cmd/ldatrain", "./cmd/searchd", "./cmd/topprivctl", "./cmd/experiments")
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return dir
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	bin := buildTools(t)
	work := t.TempDir()
	corpusPath := filepath.Join(work, "corpus.json")
	modelPath := filepath.Join(work, "model.gob")

	// 1. corpusgen
	out, err := exec.Command(filepath.Join(bin, "corpusgen"),
		"-out", corpusPath, "-docs", "300", "-topics", "8", "-seed", "5").CombinedOutput()
	if err != nil {
		t.Fatalf("corpusgen: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "documents:    300") {
		t.Fatalf("corpusgen stats missing:\n%s", out)
	}
	if fi, err := os.Stat(corpusPath); err != nil || fi.Size() == 0 {
		t.Fatalf("corpus file not written: %v", err)
	}

	// 2. ldatrain
	out, err = exec.Command(filepath.Join(bin, "ldatrain"),
		"-corpus", corpusPath, "-out", modelPath, "-k", "8", "-iters", "40", "-top", "3").CombinedOutput()
	if err != nil {
		t.Fatalf("ldatrain: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "topic ") {
		t.Fatalf("ldatrain top words missing:\n%s", out)
	}

	// 3. searchd on an ephemeral port.
	srv := exec.Command(filepath.Join(bin, "searchd"),
		"-corpus", corpusPath, "-addr", "127.0.0.1:0")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	addr := waitForAddr(t, stderr)

	// 4. topprivctl: obfuscated query against the live server.
	ctl := exec.Command(filepath.Join(bin, "topprivctl"),
		"-server", "http://"+addr, "-model", modelPath,
		"-eps1", "0.04", "-eps2", "0.015", "-seed", "9", "-show-ghosts",
		"stock market investors trading dow jones")
	ctlOut, err := ctl.CombinedOutput()
	if err != nil {
		t.Fatalf("topprivctl: %v\n%s", err, ctlOut)
	}
	text := string(ctlOut)
	if !strings.Contains(text, "cycle:") {
		t.Errorf("no cycle report in output:\n%s", text)
	}
	if !strings.Contains(text, "[USER ]") {
		t.Errorf("user query not marked in output:\n%s", text)
	}
	if !strings.Contains(text, "1.") {
		t.Errorf("no results printed:\n%s", text)
	}

	// 5. topprivctl -session: sticky decoy profile across two queries.
	sessCmd := exec.Command(filepath.Join(bin, "topprivctl"),
		"-server", "http://"+addr, "-model", modelPath,
		"-eps1", "0.04", "-eps2", "0.015", "-seed", "11", "-session",
		"stock market investors trading", "dow jones index shares")
	sessOut, err := sessCmd.CombinedOutput()
	if err != nil {
		t.Fatalf("topprivctl -session: %v\n%s", err, sessOut)
	}
	if strings.Count(string(sessOut), "cycle:") != 2 {
		t.Errorf("session mode should report two cycles:\n%s", sessOut)
	}

	// 6. topprivctl -plain for comparison.
	plain := exec.Command(filepath.Join(bin, "topprivctl"),
		"-server", "http://"+addr, "-model", modelPath, "-plain",
		"stock market investors trading dow jones")
	plainOut, err := plain.CombinedOutput()
	if err != nil {
		t.Fatalf("topprivctl -plain: %v\n%s", err, plainOut)
	}
	if topDoc(t, text) != topDoc(t, string(plainOut)) {
		t.Error("obfuscated and plain searches returned different top documents")
	}
}

func TestCLIExperimentsQuickFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	bin := buildTools(t)
	out, err := exec.Command(filepath.Join(bin, "experiments"),
		"-quick", "-fig", "6").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Figure 6") {
		t.Fatalf("figure output missing:\n%s", out)
	}
}

var addrRe = regexp.MustCompile(`on (\d+\.\d+\.\d+\.\d+:\d+)`)

// waitForAddr reads searchd's stderr until it logs its bound address.
func waitForAddr(t *testing.T, r io.Reader) string {
	t.Helper()
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				lines <- m[1]
				return
			}
		}
		close(lines)
	}()
	select {
	case addr, ok := <-lines:
		if !ok {
			t.Fatal("searchd exited before logging its address")
		}
		return addr
	case <-time.After(30 * time.Second):
		t.Fatal("timeout waiting for searchd to start")
		return ""
	}
}

var topDocRe = regexp.MustCompile(`1\. doc (\d+)`)

func topDoc(t *testing.T, out string) string {
	t.Helper()
	m := topDocRe.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no results in output:\n%s", out)
	}
	return m[1]
}

// TestCLILivePipeline exercises the live-index deployment: searchd
// -live with persistence, admin mutations through topprivctl, graceful
// SIGTERM shutdown (drain + memtable flush + save), and restart
// recovery from the manifest without reindexing.
func TestCLILivePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	bin := buildTools(t)
	work := t.TempDir()
	corpusPath := filepath.Join(work, "corpus.json")
	dataDir := filepath.Join(work, "idx")

	out, err := exec.Command(filepath.Join(bin, "corpusgen"),
		"-out", corpusPath, "-docs", "150", "-topics", "6", "-seed", "7").CombinedOutput()
	if err != nil {
		t.Fatalf("corpusgen: %v\n%s", err, out)
	}

	// First run: seed from the corpus, mutate, shut down gracefully.
	srv := exec.Command(filepath.Join(bin, "searchd"),
		"-live", "-data", dataDir, "-corpus", corpusPath, "-addr", "127.0.0.1:0", "-seal", "64")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			srv.Process.Kill()
			srv.Wait()
		}
	}()
	addr := waitForAddr(t, stderr)
	drained := make(chan string, 1)
	go func() {
		rest, _ := io.ReadAll(stderr)
		drained <- string(rest)
	}()

	docsPath := filepath.Join(work, "new.json")
	if err := os.WriteFile(docsPath, []byte(
		`[{"title":"fresh","text":"zebra migration patterns across the savanna plains"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(filepath.Join(bin, "topprivctl"),
		"-server", "http://"+addr, "-add-docs", docsPath).CombinedOutput()
	if err != nil {
		t.Fatalf("topprivctl -add-docs: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "indexed 1 documents (ids 150..150)") {
		t.Fatalf("unexpected add output:\n%s", out)
	}
	out, err = exec.Command(filepath.Join(bin, "topprivctl"),
		"-server", "http://"+addr, "-delete-doc", "3").CombinedOutput()
	if err != nil {
		t.Fatalf("topprivctl -delete-doc: %v\n%s", err, out)
	}

	// Graceful shutdown must flush the memtable (doc 150 lives there)
	// and save the segments.
	if err := srv.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("searchd exit: %v", err)
	}
	killed = true
	tail := <-drained
	if !strings.Contains(tail, "saved") {
		t.Fatalf("no save on shutdown:\n%s", tail)
	}
	if _, err := os.Stat(filepath.Join(dataDir, "MANIFEST.json")); err != nil {
		t.Fatalf("manifest not written: %v", err)
	}

	// Second run: recover from the manifest — no corpus flag at all —
	// and the flushed document plus the delete must have survived.
	srv2 := exec.Command(filepath.Join(bin, "searchd"),
		"-live", "-data", dataDir, "-corpus", filepath.Join(work, "absent.json"), "-addr", "127.0.0.1:0")
	stderr2, err := srv2.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv2.Process.Kill()
		srv2.Wait()
	}()
	logged := make(chan string, 1)
	addr2 := waitForAddrTee(t, stderr2, logged)
	if !strings.Contains(<-logged, "recovered") {
		t.Fatal("second run did not recover from the manifest")
	}

	resp, err := http.Post("http://"+addr2+"/search", "application/json",
		strings.NewReader(`{"query":"zebra migration savanna","k":3}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"doc":150`) {
		t.Fatalf("flushed document lost across restart:\n%s", body)
	}
	resp, err = http.Get("http://" + addr2 + "/doc/3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted doc resurrected: status %d", resp.StatusCode)
	}
}

// waitForAddrTee is waitForAddr but also hands back the matched log
// line so callers can assert on startup mode.
func waitForAddrTee(t *testing.T, r io.Reader, logged chan<- string) string {
	t.Helper()
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(r)
		var seen strings.Builder
		for sc.Scan() {
			seen.WriteString(sc.Text())
			seen.WriteString("\n")
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				logged <- seen.String()
				lines <- m[1]
				return
			}
		}
		close(lines)
	}()
	select {
	case addr, ok := <-lines:
		if !ok {
			t.Fatal("searchd exited before logging its address")
		}
		return addr
	case <-time.After(30 * time.Second):
		t.Fatal("timeout waiting for searchd to start")
		return ""
	}
}
