package toppriv

// End-to-end integration test of the command-line tools: build all the
// binaries, generate a corpus, train a model, host the server, and run
// an obfuscated query through topprivctl — the full deployment pipeline
// a user would follow.

import (
	"bufio"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// buildTools compiles all cmd binaries into a temp dir once.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator),
		"./cmd/corpusgen", "./cmd/ldatrain", "./cmd/searchd", "./cmd/topprivctl", "./cmd/experiments")
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return dir
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	bin := buildTools(t)
	work := t.TempDir()
	corpusPath := filepath.Join(work, "corpus.json")
	modelPath := filepath.Join(work, "model.gob")

	// 1. corpusgen
	out, err := exec.Command(filepath.Join(bin, "corpusgen"),
		"-out", corpusPath, "-docs", "300", "-topics", "8", "-seed", "5").CombinedOutput()
	if err != nil {
		t.Fatalf("corpusgen: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "documents:    300") {
		t.Fatalf("corpusgen stats missing:\n%s", out)
	}
	if fi, err := os.Stat(corpusPath); err != nil || fi.Size() == 0 {
		t.Fatalf("corpus file not written: %v", err)
	}

	// 2. ldatrain
	out, err = exec.Command(filepath.Join(bin, "ldatrain"),
		"-corpus", corpusPath, "-out", modelPath, "-k", "8", "-iters", "40", "-top", "3").CombinedOutput()
	if err != nil {
		t.Fatalf("ldatrain: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "topic ") {
		t.Fatalf("ldatrain top words missing:\n%s", out)
	}

	// 3. searchd on an ephemeral port.
	srv := exec.Command(filepath.Join(bin, "searchd"),
		"-corpus", corpusPath, "-addr", "127.0.0.1:0")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	addr := waitForAddr(t, stderr)

	// 4. topprivctl: obfuscated query against the live server.
	ctl := exec.Command(filepath.Join(bin, "topprivctl"),
		"-server", "http://"+addr, "-model", modelPath,
		"-eps1", "0.04", "-eps2", "0.015", "-seed", "9", "-show-ghosts",
		"stock market investors trading dow jones")
	ctlOut, err := ctl.CombinedOutput()
	if err != nil {
		t.Fatalf("topprivctl: %v\n%s", err, ctlOut)
	}
	text := string(ctlOut)
	if !strings.Contains(text, "cycle:") {
		t.Errorf("no cycle report in output:\n%s", text)
	}
	if !strings.Contains(text, "[USER ]") {
		t.Errorf("user query not marked in output:\n%s", text)
	}
	if !strings.Contains(text, "1.") {
		t.Errorf("no results printed:\n%s", text)
	}

	// 5. topprivctl -session: sticky decoy profile across two queries.
	sessCmd := exec.Command(filepath.Join(bin, "topprivctl"),
		"-server", "http://"+addr, "-model", modelPath,
		"-eps1", "0.04", "-eps2", "0.015", "-seed", "11", "-session",
		"stock market investors trading", "dow jones index shares")
	sessOut, err := sessCmd.CombinedOutput()
	if err != nil {
		t.Fatalf("topprivctl -session: %v\n%s", err, sessOut)
	}
	if strings.Count(string(sessOut), "cycle:") != 2 {
		t.Errorf("session mode should report two cycles:\n%s", sessOut)
	}

	// 6. topprivctl -plain for comparison.
	plain := exec.Command(filepath.Join(bin, "topprivctl"),
		"-server", "http://"+addr, "-model", modelPath, "-plain",
		"stock market investors trading dow jones")
	plainOut, err := plain.CombinedOutput()
	if err != nil {
		t.Fatalf("topprivctl -plain: %v\n%s", err, plainOut)
	}
	if topDoc(t, text) != topDoc(t, string(plainOut)) {
		t.Error("obfuscated and plain searches returned different top documents")
	}
}

func TestCLIExperimentsQuickFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	bin := buildTools(t)
	out, err := exec.Command(filepath.Join(bin, "experiments"),
		"-quick", "-fig", "6").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Figure 6") {
		t.Fatalf("figure output missing:\n%s", out)
	}
}

var addrRe = regexp.MustCompile(`on (\d+\.\d+\.\d+\.\d+:\d+)`)

// waitForAddr reads searchd's stderr until it logs its bound address.
func waitForAddr(t *testing.T, r io.Reader) string {
	t.Helper()
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				lines <- m[1]
				return
			}
		}
		close(lines)
	}()
	select {
	case addr, ok := <-lines:
		if !ok {
			t.Fatal("searchd exited before logging its address")
		}
		return addr
	case <-time.After(30 * time.Second):
		t.Fatal("timeout waiting for searchd to start")
		return ""
	}
}

var topDocRe = regexp.MustCompile(`1\. doc (\d+)`)

func topDoc(t *testing.T, out string) string {
	t.Helper()
	m := topDocRe.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no results in output:\n%s", out)
	}
	return m[1]
}
