package toppriv

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
)

var sharedSvc *Service

func getService(t *testing.T) *Service {
	t.Helper()
	if sharedSvc != nil {
		return sharedSvc
	}
	svc, err := NewService(ServiceSpec{
		Seed: 91,
		Corpus: CorpusSpec{
			NumDocs:   400,
			NumTopics: 8,
			DocLenMin: 60,
			DocLenMax: 100,
		},
		TrainIters: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	sharedSvc = svc
	return svc
}

func (s *Service) topicQueryText(topic, n int) string {
	var out []string
	for _, w := range s.GroundTruth.TopicWords[topic] {
		if _, ok := s.analyzer.AnalyzeTerm(w); ok {
			out = append(out, w)
			if len(out) == n {
				break
			}
		}
	}
	return strings.Join(out, " ")
}

func TestNewServiceSynthetic(t *testing.T) {
	svc := getService(t)
	if svc.Corpus.NumDocs() != 400 {
		t.Errorf("NumDocs = %d", svc.Corpus.NumDocs())
	}
	if svc.GroundTruth == nil {
		t.Fatal("synthetic service must expose ground truth")
	}
	if svc.Model.K != 8 {
		t.Errorf("model K = %d, want ground-truth topic count", svc.Model.K)
	}
}

func TestNewServiceIngested(t *testing.T) {
	docs := []Document{
		{Text: "stock market trading stock shares market"},
		{Text: "stock shares investors market trading"},
		{Text: "helicopter army weapons helicopter missile"},
		{Text: "army missile weapons helicopter defense"},
	}
	svc, err := NewService(ServiceSpec{Seed: 2, Documents: docs, NumTopics: 2, TrainIters: 30})
	if err != nil {
		t.Fatal(err)
	}
	if svc.GroundTruth != nil {
		t.Error("ingested corpora have no ground truth")
	}
	hits := svc.Search("stock market", 4)
	if len(hits) == 0 {
		t.Fatal("no hits for indexed content")
	}
	if hits[0].Doc != 0 && hits[0].Doc != 1 {
		t.Errorf("top hit %v not a finance doc", hits[0])
	}
}

func TestServiceSearchTitles(t *testing.T) {
	svc := getService(t)
	hits := svc.Search(svc.topicQueryText(0, 5), 5)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].Title == "" {
		t.Error("hits should carry titles")
	}
}

func TestServiceEndToEndPrivateSearch(t *testing.T) {
	svc := getService(t)
	handler, err := svc.Handler()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	obf, err := svc.NewObfuscator(PrivacyParams{Eps1: 0.04, Eps2: 0.015})
	if err != nil {
		t.Fatal(err)
	}
	client, err := svc.NewClient(ts.URL, obf, 7)
	if err != nil {
		t.Fatal(err)
	}
	q := svc.topicQueryText(1, 10)
	private, err := client.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	plain := svc.Search(q, 10)
	if len(private) != len(plain) {
		t.Fatalf("private %d vs plain %d hits", len(private), len(plain))
	}
	for i := range private {
		if private[i].Doc != plain[i].Doc {
			t.Fatalf("result %d: %v vs %v", i, private[i], plain[i])
		}
	}
	// The server must have seen more queries than the user issued.
	if got := len(handler.QueryLog()); got < 2 {
		t.Errorf("server saw %d queries; ghosts missing", got)
	}
}

func TestServiceObfuscatorSuppresses(t *testing.T) {
	svc := getService(t)
	obf, err := svc.NewObfuscator(PrivacyParams{Eps1: 0.04, Eps2: 0.015})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	worked := 0
	for topic := 0; topic < 8; topic++ {
		terms := svc.AnalyzeQuery(svc.topicQueryText(topic, 12))
		cyc, err := obf.Obfuscate(terms, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(cyc.Intention) > 0 && cyc.Satisfied {
			worked++
		}
	}
	if worked == 0 {
		t.Error("obfuscator never achieved the privacy target")
	}
}

func TestServiceBaselines(t *testing.T) {
	svc := getService(t)
	pdx, err := svc.NewPDX(4, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	qe, err := pdx.Embellish(svc.AnalyzeQuery(svc.topicQueryText(2, 6)), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if len(qe) < 6 {
		t.Errorf("embellished query too short: %d", len(qe))
	}
	tmn, err := svc.NewTrackMeNot(3, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cycle, idx, err := tmn.Cycle(svc.AnalyzeQuery(svc.topicQueryText(2, 6)), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(cycle) != 4 || idx >= 4 {
		t.Errorf("TrackMeNot cycle %d queries, user at %d", len(cycle), idx)
	}
}

func TestServiceWorkload(t *testing.T) {
	svc := getService(t)
	qs, err := svc.Workload(WorkloadSpec{Seed: 6, NumQueries: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 20 {
		t.Errorf("workload size %d", len(qs))
	}
	docs := []Document{{Text: "alpha beta gamma alpha beta"}, {Text: "alpha beta alpha gamma"}}
	ingested, err := NewService(ServiceSpec{Seed: 7, Documents: docs, NumTopics: 2, TrainIters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ingested.Workload(WorkloadSpec{}); err == nil {
		t.Error("ingested service must refuse workload generation")
	}
}

func TestServiceStats(t *testing.T) {
	svc := getService(t)
	stats := svc.Stats()
	if stats.NumDocs != 400 || stats.SizeBytes <= 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestDefaultPrivacyParams(t *testing.T) {
	p := DefaultPrivacyParams()
	if p.Eps1 != 0.05 || p.Eps2 != 0.01 {
		t.Errorf("defaults = %+v, want paper's 5%%/1%%", p)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestServiceSession(t *testing.T) {
	svc := getService(t)
	sess, err := svc.NewSession(PrivacyParams{Eps1: 0.04, Eps2: 0.015})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 3; i++ {
		terms := svc.AnalyzeQuery(svc.topicQueryText(0, 10))
		if _, err := sess.Obfuscate(terms, rng); err != nil {
			t.Fatal(err)
		}
	}
	if len(sess.History) != 3 {
		t.Errorf("history %d, want 3", len(sess.History))
	}
	if _, err := svc.NewSession(PrivacyParams{}); err == nil {
		t.Error("invalid params must error")
	}
}

func TestServiceWithLinkPrior(t *testing.T) {
	svc, err := NewService(ServiceSpec{
		Seed: 93,
		Corpus: CorpusSpec{
			NumDocs:   200,
			NumTopics: 6,
			DocLenMin: 40,
			DocLenMax: 70,
		},
		TrainIters:      30,
		LinkPriorWeight: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	hits := svc.Search(svc.topicQueryText(0, 5), 5)
	if len(hits) == 0 {
		t.Fatal("link-prior engine returned no hits")
	}
	// Privacy layer is unaffected by the ranking variant.
	obf, err := svc.NewObfuscator(PrivacyParams{Eps1: 0.04, Eps2: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obf.Obfuscate(svc.AnalyzeQuery(svc.topicQueryText(0, 10)), rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
}

func TestServiceRequestAPI(t *testing.T) {
	svc := getService(t)
	ctx := context.Background()
	q := svc.topicQueryText(0, 5)

	hits, stats, err := svc.SearchRequest(ctx, Request{Query: q, K: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || len(hits) > 7 {
		t.Fatalf("got %d hits", len(hits))
	}
	if hits[0].Title == "" {
		t.Error("hits should carry titles")
	}
	if stats.DocsScored == 0 {
		t.Error("stats should count scored documents")
	}
	legacy := svc.Search(q, 7)
	for i := range legacy {
		if hits[i] != legacy[i] {
			t.Fatalf("rank %d: SearchRequest %+v vs Search %+v", i, hits[i], legacy[i])
		}
	}

	// A batch — cycle-at-a-time through the facade — matches member-
	// by-member execution.
	reqs := []Request{
		{Query: q, K: 5},
		{Query: svc.topicQueryText(1, 4), K: 3, Mode: ExecExhaustive},
	}
	resps, err := svc.SearchBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != len(reqs) {
		t.Fatalf("%d responses for %d requests", len(resps), len(reqs))
	}
	for i, req := range reqs {
		single, _, err := svc.SearchRequest(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if len(resps[i].Hits) != len(single) {
			t.Fatalf("member %d: %d vs %d hits", i, len(resps[i].Hits), len(single))
		}
		for j := range single {
			if resps[i].Hits[j].Doc != single[j].Doc || resps[i].Hits[j].Score != single[j].Score {
				t.Fatalf("member %d rank %d: %+v vs %+v", i, j, resps[i].Hits[j], single[j])
			}
		}
	}

	// Validation errors propagate.
	if _, _, err := svc.SearchRequest(ctx, Request{Query: q, K: 0}); err == nil {
		t.Error("k = 0 must error")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := svc.SearchRequest(canceled, Request{Query: q, K: 5}); err == nil {
		t.Error("canceled context must error")
	}
}

func TestServiceSearchExecModes(t *testing.T) {
	svc := getService(t)
	q := svc.topicQueryText(2, 5)
	base, err := svc.SearchExec(q, 10, ExecExhaustive)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 {
		t.Fatal("no hits under exhaustive")
	}
	for _, mode := range []ExecMode{ExecMaxScore, ExecBlockMax, ExecAuto} {
		hits, err := svc.SearchExec(q, 10, mode)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if hits[i] != base[i] {
				t.Fatalf("%v rank %d: %+v vs exhaustive %+v", mode, i, hits[i], base[i])
			}
		}
	}
}
